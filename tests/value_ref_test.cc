#include "fdb/relational/value_dict.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace fdb {
namespace {

std::vector<Value> SampleValues() {
  return {
      Value(),
      Value(static_cast<int64_t>(0)),
      Value(static_cast<int64_t>(1)),
      Value(static_cast<int64_t>(-1)),
      Value(static_cast<int64_t>(42)),
      Value((int64_t{1} << 47) - 1),   // largest inline int
      Value(-(int64_t{1} << 47)),      // smallest inline int
      Value(int64_t{1} << 47),         // big-int pool
      Value(std::numeric_limits<int64_t>::max()),
      Value(std::numeric_limits<int64_t>::min()),
      Value(0.0),
      Value(-0.0),  // equal to +0.0; must share key and hash
      Value(2.0),
      Value(-3.25),
      Value(1.0e300),
      Value(-1.0e300),
      Value(std::numeric_limits<double>::infinity()),
      Value(-std::numeric_limits<double>::infinity()),
      Value("abc"),
      Value("abd"),
      Value(""),
      Value("zebra"),
      Value("with space"),
  };
}

TEST(ValueRefTest, RoundTripAllKinds) {
  ValueDict& dict = ValueDict::Default();
  for (const Value& v : SampleValues()) {
    ValueRef r = dict.Encode(v);
    Value back = dict.Decode(r);
    EXPECT_EQ(back, v) << v.ToString();
    EXPECT_EQ(r.is_null(), v.is_null());
    EXPECT_EQ(r.is_int(), v.is_int());
    EXPECT_EQ(r.is_double(), v.is_double());
    EXPECT_EQ(r.is_string(), v.is_string());
    if (v.is_int()) {
      EXPECT_EQ(r.as_int(), v.as_int());
    }
    if (v.is_double()) {
      EXPECT_DOUBLE_EQ(r.as_double(), v.as_double());
    }
    if (v.is_string()) {
      EXPECT_EQ(r.as_string(), v.as_string());
    }
  }
}

TEST(ValueRefTest, NanIsCanonicalisedButStaysADouble) {
  ValueDict& dict = ValueDict::Default();
  ValueRef r = dict.Encode(Value(std::nan("")));
  EXPECT_TRUE(r.is_double());
  EXPECT_TRUE(std::isnan(r.as_double()));
  EXPECT_TRUE(std::isnan(dict.Decode(r).as_double()));
}

TEST(ValueRefTest, OrderingMatchesBoxedValueOnAllPairs) {
  ValueDict& dict = ValueDict::Default();
  std::vector<Value> vals = SampleValues();
  std::vector<ValueRef> refs;
  for (const Value& v : vals) refs.push_back(dict.Encode(v));
  for (size_t i = 0; i < vals.size(); ++i) {
    for (size_t j = 0; j < vals.size(); ++j) {
      EXPECT_EQ(vals[i] <=> vals[j], refs[i] <=> refs[j])
          << vals[i].ToString() << " vs " << vals[j].ToString();
      EXPECT_EQ(vals[i] == vals[j], refs[i] == refs[j])
          << vals[i].ToString() << " vs " << vals[j].ToString();
    }
  }
}

TEST(ValueRefTest, MixedIntDoubleCompareNumerically) {
  ValueDict& dict = ValueDict::Default();
  ValueRef two_i = dict.Encode(Value(static_cast<int64_t>(2)));
  ValueRef two_d = dict.Encode(Value(2.0));
  ValueRef three_i = dict.Encode(Value(static_cast<int64_t>(3)));
  EXPECT_EQ(two_i, two_d);
  EXPECT_TRUE((two_i <=> two_d) == std::strong_ordering::equal);
  EXPECT_TRUE((two_d <=> three_i) == std::strong_ordering::less);
  EXPECT_TRUE((three_i <=> two_d) == std::strong_ordering::greater);
}

TEST(ValueRefTest, HashEqualityParityWithValue) {
  ValueDict& dict = ValueDict::Default();
  for (const Value& v : SampleValues()) {
    EXPECT_EQ(dict.Encode(v).Hash(), v.Hash()) << v.ToString();
  }
  // Mixed int/double keys that compare equal hash equally.
  EXPECT_EQ(dict.Encode(Value(2.0)).Hash(),
            dict.Encode(Value(static_cast<int64_t>(2))).Hash());
}

TEST(ValueRefTest, EvalCmpRefParity) {
  ValueDict& dict = ValueDict::Default();
  std::vector<Value> vals = SampleValues();
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe,
                       CmpOp::kGt, CmpOp::kGe}) {
        EXPECT_EQ(EvalCmp(a, op, b),
                  EvalCmpRef(dict.Encode(a), op, dict.Encode(b)))
            << a.ToString() << " " << CmpOpName(op) << " " << b.ToString();
      }
    }
  }
}

TEST(ValueRefTest, EightBytePod) {
  static_assert(sizeof(ValueRef) == 8);
  static_assert(std::is_trivially_copyable_v<ValueRef>);
}

TEST(ValueDictTest, CodesStableUnderOutOfOrderInsertsRanksReorder) {
  ValueDict d;
  uint32_t m = d.Intern("mango");
  uint32_t a = d.Intern("apple");   // out of order: splices before mango
  uint32_t z = d.Intern("zucchini");
  uint32_t c = d.Intern("cherry");  // out of order again
  // Codes are stable insertion ids...
  EXPECT_EQ(d.str(m), "mango");
  EXPECT_EQ(d.str(a), "apple");
  EXPECT_EQ(d.str(z), "zucchini");
  EXPECT_EQ(d.str(c), "cherry");
  // ...while ranks always reflect lexicographic order.
  EXPECT_LT(d.rank(a), d.rank(c));
  EXPECT_LT(d.rank(c), d.rank(m));
  EXPECT_LT(d.rank(m), d.rank(z));
  // Re-interning returns the existing code.
  EXPECT_EQ(d.Intern("apple"), a);
  EXPECT_EQ(d.num_strings(), 4u);
}

TEST(ValueDictTest, OrderPreservationUnderIncrementalInserts) {
  ValueDict d;
  std::vector<std::string> words = {"pear",  "kiwi", "fig",    "banana",
                                    "grape", "date", "orange", "apple",
                                    "melon", "lime"};
  for (const std::string& w : words) d.Intern(w);
  std::vector<std::string> sorted = words;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    uint32_t ca = *d.Find(sorted[i]);
    uint32_t cb = *d.Find(sorted[i + 1]);
    EXPECT_LT(d.rank(ca), d.rank(cb)) << sorted[i] << " < " << sorted[i + 1];
  }
}

TEST(ValueDictTest, InternBulkMatchesIncremental) {
  ValueDict d;
  std::vector<std::string> words = {"c", "a", "b", "a", "d"};
  std::vector<std::string_view> views(words.begin(), words.end());
  d.InternBulk(std::move(views));
  EXPECT_EQ(d.num_strings(), 4u);
  EXPECT_LT(d.rank(*d.Find("a")), d.rank(*d.Find("b")));
  EXPECT_LT(d.rank(*d.Find("b")), d.rank(*d.Find("c")));
  EXPECT_LT(d.rank(*d.Find("c")), d.rank(*d.Find("d")));
  // A later out-of-order insert keeps everything consistent.
  d.Intern("aa");
  EXPECT_LT(d.rank(*d.Find("a")), d.rank(*d.Find("aa")));
  EXPECT_LT(d.rank(*d.Find("aa")), d.rank(*d.Find("b")));
}

TEST(ValueDictTest, TryEncodeNeverInserts) {
  ValueDict d;
  EXPECT_FALSE(d.TryEncode(Value("unseen")).has_value());
  EXPECT_FALSE(d.TryEncode(Value(int64_t{1} << 60)).has_value());
  EXPECT_EQ(d.num_strings(), 0u);
  // Inline values always encode.
  EXPECT_TRUE(d.TryEncode(Value(static_cast<int64_t>(7))).has_value());
  EXPECT_TRUE(d.TryEncode(Value(1.5)).has_value());
  EXPECT_TRUE(d.TryEncode(Value()).has_value());
  d.Intern("seen");
  EXPECT_TRUE(d.TryEncode(Value("seen")).has_value());
}

TEST(ValueDictTest, PrivateDictCompareUsesOwnRanks) {
  ValueDict d;
  ValueRef b = d.Encode(Value("bravo"));
  ValueRef a = d.Encode(Value("alpha"));  // out-of-order insert
  EXPECT_EQ(d.Compare(a, b), std::strong_ordering::less);
  EXPECT_EQ(d.Compare(b, a), std::strong_ordering::greater);
  EXPECT_EQ(d.Compare(a, a), std::strong_ordering::equal);
  // Numeric comparisons (inline and big-int pool) also resolve locally.
  ValueRef big = d.Encode(Value(std::numeric_limits<int64_t>::max()));
  ValueRef small = d.Encode(Value(static_cast<int64_t>(5)));
  EXPECT_EQ(d.Compare(small, big), std::strong_ordering::less);
  EXPECT_EQ(d.Compare(d.Encode(Value()), small), std::strong_ordering::less);
}

TEST(ValueRefTest, OrderKeyIsMonotone) {
  ValueDict& dict = ValueDict::Default();
  std::vector<Value> vals = SampleValues();
  std::vector<ValueRef> refs;
  for (const Value& v : vals) refs.push_back(dict.Encode(v));
  for (const ValueRef& a : refs) {
    for (const ValueRef& b : refs) {
      if (a.OrderKey() < b.OrderKey()) {
        EXPECT_TRUE((a <=> b) == std::strong_ordering::less)
            << a.ToString() << " vs " << b.ToString();
      }
      if (a == b) {
        EXPECT_EQ(a.OrderKey(), b.OrderKey());
      }
    }
  }
}

}  // namespace
}  // namespace fdb
