#include "fdb/core/build.h"

#include <gtest/gtest.h>

#include "fdb/relational/rdb_ops.h"
#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;
using testing::SameSet;

TEST(FactoriseRelationTest, PathTrieGroupsByPrefix) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("a"), b = reg.Intern("b");
  Relation r{RelSchema({a, b})};
  r.Add(Row({1, 10}));
  r.Add(Row({1, 20}));
  r.Add(Row({2, 10}));
  Factorisation f = FactoriseRelation(r, {a, b});
  // Trie: <1>x(<10> u <20>) u <2>x<10> — 5 singletons.
  EXPECT_EQ(f.CountSingletons(), 5);
  EXPECT_EQ(f.CountTuples(), 3);
  EXPECT_TRUE(SameSet(f.Flatten(), r, {a, b}, reg));
  EXPECT_TRUE(f.Validate());
}

TEST(FactoriseRelationTest, ReversedOrderChangesGrouping) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("a"), b = reg.Intern("b");
  Relation r{RelSchema({a, b})};
  r.Add(Row({1, 10}));
  r.Add(Row({2, 10}));
  r.Add(Row({3, 10}));
  Factorisation f = FactoriseRelation(r, {b, a});
  // Grouped by b: <10>x(<1> u <2> u <3>) — 4 singletons.
  EXPECT_EQ(f.CountSingletons(), 4);
  EXPECT_TRUE(SameSet(f.Flatten(), r, {a, b}, reg));
}

TEST(FactoriseRelationTest, EmptyRelation) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("a"), b = reg.Intern("b");
  Relation r{RelSchema({a, b})};
  Factorisation f = FactoriseRelation(r, {a, b});
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.Validate());
}

TEST(FactoriseRelationTest, WrongOrderSizeThrows) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("a"), b = reg.Intern("b");
  Relation r{RelSchema({a, b})};
  EXPECT_THROW(FactoriseRelation(r, {a}), std::invalid_argument);
}

TEST(FactoriseJoinTest, PizzeriaMatchesFigure1) {
  Pizzeria p = MakePizzeria();
  EXPECT_EQ(p.view().CountSingletons(), 26);
  EXPECT_TRUE(p.view().Validate());
}

TEST(FactoriseJoinTest, DanglingTuplesArePruned) {
  // A package with no items must not appear (its branch would be empty).
  AttributeRegistry reg;
  AttrId a = reg.Intern("ja"), b = reg.Intern("jb"), c = reg.Intern("jc");
  Relation r1{RelSchema({a, b})};
  r1.Add(Row({1, 10}));
  r1.Add(Row({2, 20}));  // b=20 has no partner in r2
  Relation r2{RelSchema({b, c})};
  r2.Add(Row({10, 100}));
  FTree t;
  int nb = t.AddNode({b}, -1);
  t.AddNode({a}, nb);
  t.AddNode({c}, nb);
  t.AddEdge({{a, b}, 2.0, "r1"});
  t.AddEdge({{b, c}, 1.0, "r2"});
  Factorisation f = FactoriseJoin(t, {&r1, &r2});
  EXPECT_EQ(f.CountTuples(), 1);
  Relation join = NaturalJoin(r1, r2);
  EXPECT_TRUE(SameSet(f.Flatten(), join, {a, b, c}, reg));
  EXPECT_TRUE(f.Validate());
}

TEST(FactoriseJoinTest, EmptyJoinResult) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ka"), b = reg.Intern("kb"), c = reg.Intern("kc");
  Relation r1{RelSchema({a, b})};
  r1.Add(Row({1, 10}));
  Relation r2{RelSchema({b, c})};
  r2.Add(Row({99, 100}));
  FTree t;
  int nb = t.AddNode({b}, -1);
  t.AddNode({a}, nb);
  t.AddNode({c}, nb);
  t.AddEdge({{a, b}, 1.0, "r1"});
  t.AddEdge({{b, c}, 1.0, "r2"});
  Factorisation f = FactoriseJoin(t, {&r1, &r2});
  EXPECT_TRUE(f.empty());
}

TEST(FactoriseJoinTest, EquivalenceClassAcrossRelations) {
  // Attributes a (in r1) and x (in r2) placed in one class: equated.
  AttributeRegistry reg;
  AttrId a = reg.Intern("ea"), b = reg.Intern("eb");
  AttrId x = reg.Intern("ex"), y = reg.Intern("ey");
  Relation r1{RelSchema({a, b})};
  r1.Add(Row({1, 10}));
  r1.Add(Row({2, 20}));
  Relation r2{RelSchema({x, y})};
  r2.Add(Row({1, 111}));
  r2.Add(Row({3, 333}));
  FTree t;
  int top = t.AddNode({a, x}, -1);
  t.AddNode({b}, top);
  t.AddNode({y}, top);
  t.AddEdge({{a, b}, 2.0, "r1"});
  t.AddEdge({{x, y}, 2.0, "r2"});
  Factorisation f = FactoriseJoin(t, {&r1, &r2});
  // Only a = x = 1 survives.
  EXPECT_EQ(f.CountTuples(), 1);
  Relation flat = f.Flatten();
  // The class contributes both attribute columns with the shared value.
  EXPECT_EQ(flat.schema().arity(), 4);
  EXPECT_EQ(flat.rows()[0][0].as_int(), 1);
}

TEST(FactoriseJoinTest, IntraRelationClassFiltersUnequalRows) {
  // Both attributes of r sit in the same class: acts as σ_{a=b}.
  AttributeRegistry reg;
  AttrId a = reg.Intern("fa"), b = reg.Intern("fb");
  Relation r{RelSchema({a, b})};
  r.Add(Row({1, 1}));
  r.Add(Row({1, 2}));
  r.Add(Row({3, 3}));
  FTree t;
  t.AddNode({a, b}, -1);
  t.AddEdge({{a, b}, 3.0, "r"});
  Factorisation f = FactoriseJoin(t, {&r});
  EXPECT_EQ(f.CountTuples(), 2);
}

TEST(FactoriseJoinTest, AttributesNotOnOnePathThrow) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ga"), b = reg.Intern("gb"), c = reg.Intern("gc");
  Relation r{RelSchema({a, b, c})};
  r.Add(Row({1, 2, 3}));
  FTree t;
  int na = t.AddNode({a}, -1);
  t.AddNode({b}, na);
  t.AddNode({c}, na);  // b and c are siblings: r's attrs not on one path
  t.AddEdge({{a, b, c}, 1.0, "r"});
  EXPECT_THROW(FactoriseJoin(t, {&r}), std::invalid_argument);
}

TEST(FactoriseJoinTest, MissingAttributeThrows) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ha"), b = reg.Intern("hb");
  Relation r{RelSchema({a, b})};
  r.Add(Row({1, 2}));
  FTree t;
  t.AddNode({a}, -1);
  EXPECT_THROW(FactoriseJoin(t, {&r}), std::invalid_argument);
}

TEST(FactoriseJoinTest, UncoveredNodeThrows) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ia"), b = reg.Intern("ib");
  Relation r{RelSchema({a})};
  r.Add(Row({1}));
  FTree t;
  int na = t.AddNode({a}, -1);
  t.AddNode({b}, na);  // no relation covers b
  t.AddEdge({{a}, 1.0, "r"});
  EXPECT_THROW(FactoriseJoin(t, {&r}), std::invalid_argument);
}

// Differential property: the factorised join over a chain f-tree equals the
// relational natural join, across random databases.
class TrieJoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(TrieJoinProperty, MatchesRelationalJoin) {
  Database db;
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam());
  spec.num_relations = 2 + GetParam() % 2;
  spec.rows = 20 + GetParam() % 17;
  spec.domain = 4 + GetParam() % 4;
  RandomDb rdb = GenerateChainDb(&db, "t" + std::to_string(GetParam()),
                                 spec);
  std::vector<const Relation*> rels;
  for (const std::string& name : rdb.relation_names) {
    rels.push_back(db.relation(name));
  }
  FTree tree = ChooseFTree(rels);
  ASSERT_TRUE(tree.SatisfiesPathConstraint());
  Factorisation f = FactoriseJoin(tree, rels);
  EXPECT_TRUE(f.Validate());
  Relation join = NaturalJoinAll(rels);
  std::vector<AttrId> cols;
  for (const std::string& a : rdb.attr_names) {
    cols.push_back(*db.registry().Find(a));
  }
  EXPECT_TRUE(testing::SameSet(f.Flatten(), join, cols, db.registry()));
  // Succinctness: never more singletons than 1 + tuples × arity.
  EXPECT_LE(f.CountSingletons(),
            1 + join.size() * join.schema().arity());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieJoinProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace fdb
