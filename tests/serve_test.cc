#include "fdb/serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/engine/database.h"
#include "fdb/obs/metrics.h"
#include "fdb/serve/admission.h"
#include "fdb/serve/client.h"
#include "fdb/serve/session.h"
#include "fdb/serve/session_registry.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

// The serve path end to end: real sockets, concurrent sessions,
// transactions over the wire, admission backpressure, per-query limits
// and graceful shutdown. Servers bind ephemeral loopback ports so tests
// never collide.

namespace fdb {
namespace serve {
namespace {

using testing::Row;

/// The shell's demo workload plus a small updatable view "V" for writes.
void FillDb(Database* db, int scale) {
  InstallWorkload(db, SmallParams(scale), "R1");
  AttrId a = db->Attr("va"), b = db->Attr("vb");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < 50; ++x) r.Add({Value(x / 10), Value(x)});
  db->AddView("V", FactoriseRelation(r, {a, b}));
}

int64_t CountV(Client* c) {
  Client::Result res = c->Query("SELECT va, vb FROM V");
  EXPECT_TRUE(res.ok) << res.error.message;
  return static_cast<int64_t>(res.rows.size());
}

// --- admission controller (no sockets) ----------------------------------

TEST(AdmissionTest, AdmitsUpToTheConcurrencyLimit) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue = 0;
  AdmissionController adm(cfg);
  AdmissionController::Ticket t1 = adm.Admit();
  AdmissionController::Ticket t2 = adm.Admit();
  EXPECT_TRUE(t1.admitted);
  EXPECT_TRUE(t2.admitted);
  EXPECT_EQ(adm.active(), 2);

  // Saturated with no queue: the third caller is rejected immediately
  // with a positive backoff hint — never blocked.
  AdmissionController::Ticket t3 = adm.Admit();
  EXPECT_FALSE(t3.admitted);
  EXPECT_GT(t3.retry_after_ms, 0u);

  adm.Release();
  adm.Release();
  EXPECT_EQ(adm.active(), 0);
  EXPECT_TRUE(adm.Admit().admitted);
  adm.Release();
}

TEST(AdmissionTest, QueuedCallerGetsTheSlotWhenReleased) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 1;
  cfg.queue_wait_ms = 10000;  // far longer than the test
  AdmissionController adm(cfg);
  ASSERT_TRUE(adm.Admit().admitted);

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmissionController::Ticket t = adm.Admit();
    admitted.store(t.admitted);
    if (t.admitted) adm.Release();
  });
  // Give the waiter time to enqueue, then free the slot.
  while (adm.queued() == 0) std::this_thread::yield();
  adm.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

TEST(AdmissionTest, QueueWaitDeadlineRejectsInsteadOfHanging) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 1;
  cfg.queue_wait_ms = 50;
  AdmissionController adm(cfg);
  ASSERT_TRUE(adm.Admit().admitted);
  AdmissionController::Ticket t = adm.Admit();  // waits 50 ms, then rejects
  EXPECT_FALSE(t.admitted);
  EXPECT_GE(t.queue_wait_ns, 40ull * 1000 * 1000);
  adm.Release();
}

TEST(AdmissionTest, CloseWakesWaitersAndRejectsEveryoneAfter) {
  AdmissionConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 4;
  cfg.queue_wait_ms = 60000;
  AdmissionController adm(cfg);
  ASSERT_TRUE(adm.Admit().admitted);
  std::atomic<int> rejected{0};
  std::thread waiter([&] {
    if (!adm.Admit().admitted) rejected.fetch_add(1);
  });
  while (adm.queued() == 0) std::this_thread::yield();
  adm.Close();
  waiter.join();
  EXPECT_EQ(rejected.load(), 1);
  EXPECT_FALSE(adm.Admit().admitted);
}

// --- statement layer without sockets ------------------------------------

std::vector<Frame> DecodeAll(const std::vector<uint8_t>& bytes) {
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  Frame f;
  while (dec.Next(&f)) frames.push_back(f);
  return frames;
}

class SessionLimitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FillDb(&db_, 4);
    write_mu_ = std::make_unique<base::Mutex>();
  }

  std::unique_ptr<Session> MakeSession(const AdmissionConfig& cfg) {
    admission_ = std::make_unique<AdmissionController>(cfg);
    ServeContext ctx;
    ctx.db = &db_;
    ctx.admission = admission_.get();
    ctx.write_mu = write_mu_.get();
    ctx.draining = &draining_;
    return std::make_unique<Session>(ctx, -1, "test");
  }

  Database db_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<base::Mutex> write_mu_;
  std::atomic<bool> draining_{false};
};

TEST_F(SessionLimitTest, MemoryCapKillsTheQueryWithATypedError) {
  AdmissionConfig cfg;
  cfg.query_mem_bytes = 256 << 10;  // far below the big join's footprint
  std::unique_ptr<Session> s = MakeSession(cfg);

  std::vector<uint8_t> out;
  s->HandleStatement("SELECT customer, date, package, item, price FROM R1",
                     &out);
  std::vector<Frame> frames = DecodeAll(out);
  ASSERT_FALSE(frames.empty());
  ASSERT_EQ(frames.back().type, FrameType::kError);
  ErrorInfo err = DecodeError(frames.back().payload);
  EXPECT_EQ(err.code, kErrMemory);
  EXPECT_EQ(s->stats()->killed.load(), 1);

  // The session survives the kill: a small statement runs fine after it.
  out.clear();
  s->HandleStatement("SELECT va, vb FROM V", &out);
  frames = DecodeAll(out);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().type, FrameType::kDone)
      << (frames.back().type == FrameType::kError
              ? DecodeError(frames.back().payload).message
              : "");
}

TEST_F(SessionLimitTest, WallTimeCapKillsTheQueryWithATypedError) {
  AdmissionConfig cfg;
  cfg.query_timeout_ms = 1;  // no full-join statement finishes in 1 ms
  std::unique_ptr<Session> s = MakeSession(cfg);

  std::vector<uint8_t> out;
  s->HandleStatement(
      "SELECT customer, date, package, item, price FROM R1 ORDER BY price",
      &out);
  std::vector<Frame> frames = DecodeAll(out);
  ASSERT_FALSE(frames.empty());
  ASSERT_EQ(frames.back().type, FrameType::kError);
  EXPECT_EQ(DecodeError(frames.back().payload).code, kErrTimeout);

  out.clear();
  s->HandleStatement("SELECT va, vb FROM V", &out);
  frames = DecodeAll(out);
  ASSERT_FALSE(frames.empty());
  EXPECT_EQ(frames.back().type, FrameType::kDone);
}

TEST_F(SessionLimitTest, ParseAndTxnErrorsAreTypedAndNonFatal) {
  std::unique_ptr<Session> s = MakeSession(AdmissionConfig{});

  std::vector<uint8_t> out;
  s->HandleStatement("SELEKT nonsense", &out);
  std::vector<Frame> frames = DecodeAll(out);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kError);
  EXPECT_EQ(DecodeError(frames[0].payload).code, kErrParse);

  out.clear();
  s->HandleStatement("COMMIT", &out);  // no BEGIN
  frames = DecodeAll(out);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, FrameType::kError);
  EXPECT_EQ(DecodeError(frames[0].payload).code, kErrTxn);

  out.clear();
  s->HandleStatement("SELECT va, vb FROM V", &out);
  frames = DecodeAll(out);
  EXPECT_EQ(frames.back().type, FrameType::kDone);
}

TEST(ParseWriteTest, RecognisesWritesAndRejectsMalformedOnes) {
  bool is_insert = false;
  std::string view;
  Tuple tuple;
  ASSERT_TRUE(ParseWriteStatement("INSERT INTO V VALUES (1, 2.5, 'a''b', NULL);",
                                  &is_insert, &view, &tuple));
  EXPECT_TRUE(is_insert);
  EXPECT_EQ(view, "V");
  ASSERT_EQ(tuple.size(), 4u);
  EXPECT_EQ(tuple[0].as_int(), 1);
  EXPECT_EQ(tuple[1].as_double(), 2.5);
  EXPECT_EQ(tuple[2].as_string(), "a'b");
  EXPECT_TRUE(tuple[3].is_null());

  tuple.clear();
  ASSERT_TRUE(ParseWriteStatement("delete from V values (7, 8)", &is_insert,
                                  &view, &tuple));
  EXPECT_FALSE(is_insert);

  // Not writes at all.
  EXPECT_FALSE(ParseWriteStatement("SELECT 1", &is_insert, &view, &tuple));
  EXPECT_FALSE(ParseWriteStatement("BEGIN", &is_insert, &view, &tuple));

  // Writes, but malformed: typed parse failure, not a crash.
  EXPECT_THROW(ParseWriteStatement("INSERT INTO V", &is_insert, &view, &tuple),
               std::invalid_argument);
  EXPECT_THROW(ParseWriteStatement("INSERT INTO V VALUES (1", &is_insert,
                                   &view, &tuple),
               std::invalid_argument);
  EXPECT_THROW(ParseWriteStatement("INSERT INTO V VALUES (1) trailing",
                                   &is_insert, &view, &tuple),
               std::invalid_argument);
}

// --- full server over real sockets --------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig cfg, int scale = 3) {
    FillDb(&db_, scale);
    server_ = std::make_unique<Server>(&db_, cfg);
    server_->Start();
    ASSERT_GT(server_->port(), 0);
  }

  Client Connect() {
    Client c;
    c.Connect("127.0.0.1", server_->port());
    return c;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, QueryOverTheWireMatchesLocalExecution) {
  StartServer(ServerConfig{});
  Client c = Connect();
  Client::Result res = c.Query(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer");
  ASSERT_TRUE(res.ok) << res.error.message;
  ASSERT_EQ(res.columns.size(), 2u);
  EXPECT_EQ(res.columns[0], "customer");
  EXPECT_EQ(res.rows.size(), res.stats.rows);
  EXPECT_GT(res.rows.size(), 0u);
  EXPECT_GT(res.stats.elapsed_ns, 0u);
}

TEST_F(ServerTest, ManyConcurrentClientsMixedReadWrite) {
  ServerConfig cfg;
  cfg.admission.max_concurrent = 4;
  cfg.admission.max_queue = 64;
  cfg.admission.queue_wait_ms = 30000;
  StartServer(cfg);

  constexpr int kClients = 8;
  constexpr int kStatements = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int ci = 0; ci < kClients; ++ci) {
    threads.emplace_back([&, ci] {
      try {
        Client c;
        c.Connect("127.0.0.1", server_->port());
        for (int q = 0; q < kStatements; ++q) {
          Client::Result res;
          if (q % 3 == 2) {
            // Distinct tuple per (client, statement): no-op-free inserts.
            res = c.Query("INSERT INTO V VALUES (" + std::to_string(100 + ci) +
                          ", " + std::to_string(1000 + ci * 100 + q) + ")");
          } else {
            res = c.Query(
                "SELECT customer, sum(price) AS revenue FROM R1 "
                "GROUP BY customer");
          }
          if (!res.ok && !res.retry) failures.fetch_add(1);
        }
        c.Close();
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Every insert landed exactly once (distinct tuples, atomic writes).
  Client c = Connect();
  EXPECT_EQ(CountV(&c), 50 + kClients * (kStatements / 3));
  c.Close();
}

TEST_F(ServerTest, TransactionsOverTheWire) {
  StartServer(ServerConfig{});
  Client writer = Connect();
  Client reader = Connect();
  int64_t before = CountV(&reader);

  ASSERT_TRUE(writer.Query("BEGIN").ok);
  ASSERT_TRUE(writer.Query("INSERT INTO V VALUES (900, 9000)").ok);
  ASSERT_TRUE(writer.Query("INSERT INTO V VALUES (900, 9001)").ok);
  // Buffered writes are session-local until COMMIT.
  EXPECT_EQ(CountV(&reader), before);
  ASSERT_TRUE(writer.Query("COMMIT").ok);
  EXPECT_EQ(CountV(&reader), before + 2);

  // ROLLBACK drops the buffer.
  ASSERT_TRUE(writer.Query("BEGIN").ok);
  ASSERT_TRUE(writer.Query("INSERT INTO V VALUES (901, 9100)").ok);
  ASSERT_TRUE(writer.Query("ROLLBACK").ok);
  EXPECT_EQ(CountV(&reader), before + 2);

  // A session closing with an open transaction must not leak it into the
  // database: the buffer dies with the session.
  ASSERT_TRUE(writer.Query("BEGIN").ok);
  ASSERT_TRUE(writer.Query("INSERT INTO V VALUES (902, 9200)").ok);
  writer.Close();
  EXPECT_EQ(CountV(&reader), before + 2);
  reader.Close();
}

TEST_F(ServerTest, SessionsSystemTableSeesLiveSessions) {
  StartServer(ServerConfig{});
  Client c = Connect();
  ASSERT_TRUE(c.Query("SELECT customer FROM R1 GROUP BY customer").ok);
  Client::Result res = c.Query(
      "SELECT session_id, peer, queries, rows_sent FROM fdb.sessions");
  ASSERT_TRUE(res.ok) << res.error.message;
  // At least this session, with at least one completed query.
  ASSERT_GE(res.rows.size(), 1u);
  bool found = false;
  for (const std::vector<Value>& row : res.rows) {
    if (row[2].as_int() >= 1) found = true;
  }
  EXPECT_TRUE(found);
  c.Close();
}

TEST_F(ServerTest, SaturationYieldsTypedRetriesNotHangs) {
  obs::SetMetricsEnabled(true);
  ServerConfig cfg;
  cfg.admission.max_concurrent = 1;
  cfg.admission.max_queue = 0;  // reject instantly when busy
  StartServer(cfg, /*scale=*/4);

  constexpr int kClients = 6;
  std::atomic<int> retries{0}, oks{0}, hard_failures{0};
  std::vector<std::thread> threads;
  for (int ci = 0; ci < kClients; ++ci) {
    threads.emplace_back([&] {
      try {
        Client c;
        c.Connect("127.0.0.1", server_->port());
        for (int q = 0; q < 10; ++q) {
          Client::Result res = c.Query(
              "SELECT customer, item FROM R1 ORDER BY customer");
          if (res.retry) {
            retries.fetch_add(1);
            EXPECT_GT(res.retry_info.retry_after_ms, 0u);
          } else if (res.ok) {
            oks.fetch_add(1);
          } else {
            hard_failures.fetch_add(1);
          }
        }
        c.Close();
      } catch (const std::exception&) {
        hard_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_GT(oks.load(), 0);
  // Six clients hammering a single slot with no queue: rejections are
  // effectively certain; the bound being tested is "reject, don't hang".
  EXPECT_GT(retries.load(), 0);

  // The server still serves once the burst is over.
  Client c = Connect();
  for (int attempt = 0; attempt < 50; ++attempt) {
    Client::Result res = c.Query("SELECT va, vb FROM V");
    if (res.ok) break;
    ASSERT_TRUE(res.retry);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  c.Close();
}

TEST_F(ServerTest, SessionCapRefusesExtraConnections) {
  ServerConfig cfg;
  cfg.max_sessions = 1;
  StartServer(cfg);
  Client first = Connect();
  EXPECT_THROW(
      {
        Client second;
        second.Connect("127.0.0.1", server_->port());
      },
      std::runtime_error);
  first.Close();
}

TEST_F(ServerTest, GracefulShutdownDisconnectsIdleSessions) {
  StartServer(ServerConfig{});
  Client c = Connect();
  ASSERT_TRUE(c.Query("SELECT va, vb FROM V").ok);

  server_->Shutdown();
  EXPECT_TRUE(server_->draining());

  // The drained session is gone: the next statement fails cleanly.
  EXPECT_THROW((void)c.Query("SELECT va, vb FROM V"), std::runtime_error);
  // And the listener is closed: new connections are refused.
  EXPECT_THROW(
      {
        Client again;
        again.Connect("127.0.0.1", server_->port());
      },
      std::runtime_error);

  EXPECT_EQ(SessionRegistry::Instance().live(), 0);
  server_->Shutdown();  // idempotent
}

TEST_F(ServerTest, ShutdownKillsARunawayStatement) {
  ServerConfig cfg;
  cfg.drain_ms = 200;  // short grace period, then the token trips
  StartServer(cfg, /*scale=*/4);

  Client c = Connect();
  std::atomic<bool> got_response{false};
  std::thread runner([&] {
    try {
      // Heavy statement: likely still executing when Shutdown() fires.
      (void)c.Query(
          "SELECT customer, date, package, item, price FROM R1 "
          "ORDER BY price");
    } catch (const std::exception&) {
    }
    got_response.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->Shutdown();  // must return despite the in-flight statement
  runner.join();
  EXPECT_TRUE(got_response.load());
  EXPECT_EQ(SessionRegistry::Instance().live(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace fdb
