#include "fdb/check/check.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/fact_arena.h"
#include "fdb/engine/database.h"
#include "fdb/relational/value_dict.h"
#include "fdb/serve/admission.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bool HasIssue(const check::Report& r, const std::string& name) {
  for (const check::Issue& i : r.issues) {
    if (i.check == name) return true;
  }
  return false;
}

/// The first root with at least one child (corruption seeds patch a
/// child slot, so they need a union that has one).
FactPtr FindNodeWithChildren(const Factorisation& f) {
  for (FactPtr root : f.roots()) {
    if (root != nullptr && !root->children.empty()) return root;
  }
  return nullptr;
}

/// A database with one updatable two-attribute view "V".
Database MakeSmallDb(int64_t rows) {
  Database db;
  AttrId a = db.Attr("ck_a"), b = db.Attr("ck_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x / 10), Value(x)});
  db.AddView("V", FactoriseRelation(r, {a, b}));
  return db;
}

// --- clean databases validate ---------------------------------------------

TEST(CheckTest, CleanWorkloadValidates) {
  Database db;
  InstallWorkload(&db, SmallParams(1));
  check::Report r = check::ValidateDatabase(db);
  EXPECT_TRUE(r.ok()) << r.ToString();
  EXPECT_GT(r.views_checked, 0u);
  EXPECT_GT(r.nodes_visited, 0u);
}

TEST(CheckTest, CleanSnapshotChainValidates) {
  std::string path = TempPath("check_chain.fdbs");
  Database db = MakeSmallDb(60);
  db.EnableWal(path);  // checkpoints a base and binds the log
  db.Insert("V", testing::Row({100, 1000}));
  db.Checkpoint(path);  // appends a delta
  db.Insert("V", testing::Row({101, 1001}));  // leaves a live WAL group

  check::Report r = check::ValidateDatabase(db);
  EXPECT_TRUE(r.ok()) << r.ToString();
  // Base + delta envelopes were both opened and CRC-verified.
  EXPECT_GE(r.files_checked, 2u);
  EXPECT_NO_THROW(check::ValidateDatabaseOrThrow(db));
}

TEST(CheckTest, EnabledFollowsEnvironment) {
  ::setenv("FDB_CHECK", "1", 1);
  EXPECT_TRUE(check::Enabled());
  ::setenv("FDB_CHECK", "0", 1);
  EXPECT_FALSE(check::Enabled());
  ::unsetenv("FDB_CHECK");
}

// --- seeded corruption class 1: dangling (null) child pointer -------------

TEST(CheckTest, DetectsNullChildPointer) {
  Pizzeria p = MakePizzeria();
  std::shared_ptr<const Factorisation> f = p.db->ViewSnapshot("R");
  FactPtr parent = FindNodeWithChildren(*f);
  ASSERT_NE(parent, nullptr);
  auto* slots = const_cast<FactPtr*>(parent->children.ptr);
  FactPtr saved = slots[0];
  slots[0] = nullptr;

  check::Report r = check::ValidateDatabase(*p.db);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasIssue(r, "null-child")) << r.ToString();
  EXPECT_THROW(check::ValidateDatabaseOrThrow(*p.db), std::runtime_error);
  slots[0] = saved;
}

// --- seeded corruption class 2: cycle in the node graph -------------------

TEST(CheckTest, DetectsNodeCycle) {
  Pizzeria p = MakePizzeria();
  std::shared_ptr<const Factorisation> f = p.db->ViewSnapshot("R");
  FactPtr parent = FindNodeWithChildren(*f);
  ASSERT_NE(parent, nullptr);
  auto* slots = const_cast<FactPtr*>(parent->children.ptr);
  FactPtr saved = slots[0];
  slots[0] = parent;  // the node becomes its own descendant

  check::Report r = check::ValidateDatabase(*p.db);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasIssue(r, "node-cycle")) << r.ToString();
  slots[0] = saved;
}

// --- seeded corruption class 3: cross-arena leak --------------------------

TEST(CheckTest, DetectsForeignArenaNode) {
  Pizzeria p = MakePizzeria();
  std::shared_ptr<const Factorisation> f = p.db->ViewSnapshot("R");
  FactPtr parent = FindNodeWithChildren(*f);
  ASSERT_NE(parent, nullptr);

  // A node in an arena the view never adopted: its memory is not pinned
  // by the view, so it may vanish under the view at any time.
  FactArena foreign;
  ValueRef v = p.db->dict().Encode(Value(int64_t{7}));
  FactPtr stray = foreign.NewNode(&v, 1, nullptr, 0);

  auto* slots = const_cast<FactPtr*>(parent->children.ptr);
  FactPtr saved = slots[0];
  slots[0] = stray;

  check::Report r = check::ValidateDatabase(*p.db);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasIssue(r, "arena-ownership")) << r.ToString();
  slots[0] = saved;
}

// --- seeded corruption class 4: dictionary rank inversion -----------------

TEST(CheckTest, DetectsDictRankInversion) {
  ValueDict d;
  uint32_t apple = d.Intern("apple");
  uint32_t banana = d.Intern("banana");
  d.Intern("cherry");
  {
    check::Report clean;
    check::CheckDictionary(d, &clean);
    ASSERT_TRUE(clean.ok()) << clean.ToString();
  }
  // Swap two ranks: the permutation stays a bijection but orders
  // "banana" before "apple".
  uint32_t ra = d.rank(apple), rb = d.rank(banana);
  d.TestOnlyCorruptRank(apple, rb);
  d.TestOnlyCorruptRank(banana, ra);

  check::Report r;
  check::CheckDictionary(d, &r);
  EXPECT_TRUE(HasIssue(r, "dict-rank-order")) << r.ToString();
}

TEST(CheckTest, DetectsDictRankRangeAndDuplicate) {
  ValueDict d;
  uint32_t apple = d.Intern("apple");
  uint32_t banana = d.Intern("banana");
  d.TestOnlyCorruptRank(apple, 99);  // out of [0, 2)
  check::Report r;
  check::CheckDictionary(d, &r);
  EXPECT_TRUE(HasIssue(r, "dict-rank-range")) << r.ToString();

  d.TestOnlyCorruptRank(apple, d.rank(banana));  // two codes, one rank
  check::Report r2;
  check::CheckDictionary(d, &r2);
  EXPECT_TRUE(HasIssue(r2, "dict-rank-duplicate")) << r2.ToString();
}

// --- seeded corruption class 5: stale delta stamp -------------------------

TEST(CheckTest, DetectsStaleDeltaStamp) {
  std::string path = TempPath("check_stale.fdbs");
  Database db = MakeSmallDb(60);
  db.Checkpoint(path);  // base
  db.Insert("V", testing::Row({100, 1000}));
  storage::CheckpointInfo info = db.Checkpoint(path);  // delta
  ASSERT_EQ(info.kind, storage::CheckpointInfo::kDelta);

  // Binary-patch the delta's manifest epoch — the on-disk signature of a
  // delta left over from a previous, since-folded chain — re-stamping
  // the section CRC so only the chain check can object.
  std::string dp = storage::DeltaPath(path, info.seq);
  std::ifstream in(dp, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  storage::FileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  bool patched = false;
  for (uint64_t s = 0; s < h.section_count; ++s) {
    size_t at = sizeof(storage::FileHeader) +
                s * sizeof(storage::SectionEntry);
    storage::SectionEntry e;
    std::memcpy(&e, bytes.data() + at, sizeof(e));
    if (e.kind != storage::kSectionDeltaManifest) continue;
    uint64_t epoch;
    std::memcpy(&epoch, bytes.data() + e.offset, sizeof(epoch));
    epoch += 7;
    std::memcpy(bytes.data() + e.offset, &epoch, sizeof(epoch));
    e.crc32 = storage::Crc32(bytes.data() + e.offset, e.size);
    std::memcpy(bytes.data() + at, &e, sizeof(e));
    patched = true;
  }
  ASSERT_TRUE(patched);
  std::ofstream out(dp, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  check::Report r = check::ValidateDatabase(db);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(HasIssue(r, "delta-chain-stamp")) << r.ToString();
  EXPECT_FALSE(HasIssue(r, "section-crc")) << "CRC was re-stamped: "
                                           << r.ToString();
}

// A flipped byte without the CRC re-stamp is caught one layer earlier.
TEST(CheckTest, DetectsSectionCrcMismatch) {
  std::string path = TempPath("check_crc.fdbs");
  Database db = MakeSmallDb(60);
  db.Checkpoint(path);

  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-1, std::ios::end);
  char last;
  f.seekg(-1, std::ios::end);
  f.get(last);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(last ^ 0x10));
  f.close();

  check::Report r;
  check::CheckChainFiles(path, &r);
  EXPECT_TRUE(HasIssue(r, "section-crc")) << r.ToString();
}

// --- seeded corruption class 6: admission counter drift -------------------

TEST(CheckTest, DetectsAdmissionCounterDrift) {
  serve::AdmissionConfig cfg;
  cfg.max_concurrent = 2;
  serve::AdmissionController ac(cfg);
  {
    check::Report clean;
    check::CheckAdmission(ac, &clean);
    ASSERT_TRUE(clean.ok()) << clean.ToString();
  }
  // A double Release: the classic lost-ticket bug drives active below 0.
  ASSERT_TRUE(ac.Admit().admitted);
  ac.Release();
  ac.Release();

  check::Report r;
  check::CheckAdmission(ac, &r);
  EXPECT_TRUE(HasIssue(r, "admission-counters")) << r.ToString();
}

// --- auto-hooks -----------------------------------------------------------

TEST(CheckTest, OpenRunsCheckWhenEnabled) {
  std::string path = TempPath("check_hook.fdbs");
  {
    Database db = MakeSmallDb(40);
    db.Save(path);
  }
  ::setenv("FDB_CHECK", "1", 1);
  EXPECT_NO_THROW({
    Database re = Database::Open(path);
    (void)re;
  });
  ::unsetenv("FDB_CHECK");
}

}  // namespace
}  // namespace fdb
