#include "fdb/core/enumerate.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/swap.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;

TEST(EnumeratorTest, EnumeratesAllTuplesOnce) {
  Pizzeria p = MakePizzeria();
  Enumerator e(p.view());
  int n = 0;
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    ++n;
  }
  EXPECT_EQ(n, 13);
  EXPECT_FALSE(e.Next());  // stays exhausted
}

TEST(EnumeratorTest, DefaultOrderIsLexicographicInVisitOrder) {
  Pizzeria p = MakePizzeria();
  Relation r = EnumerateToRelation(
      p.view(), p.view().tree().TopologicalOrder(),
      std::vector<SortDir>(5, SortDir::kAsc));
  // Visit order: pizza, date, customer, item, price.
  std::vector<SortKey> keys;
  for (AttrId a : r.schema().attrs()) keys.push_back({a, SortDir::kAsc});
  EXPECT_TRUE(r.IsSortedBy(keys));
  EXPECT_EQ(r.rows().front()[0].as_string(), "Capricciosa");
  EXPECT_EQ(r.rows().back()[0].as_string(), "Margherita");
}

TEST(EnumeratorTest, DescendingDirection) {
  Pizzeria p = MakePizzeria();
  std::vector<SortDir> dirs(5, SortDir::kAsc);
  dirs[0] = SortDir::kDesc;  // pizza descending
  Relation r = EnumerateToRelation(
      p.view(), p.view().tree().TopologicalOrder(), dirs);
  EXPECT_EQ(r.rows().front()[0].as_string(), "Margherita");
  EXPECT_EQ(r.rows().back()[0].as_string(), "Capricciosa");
  std::vector<SortKey> keys = {{r.schema().attr(0), SortDir::kDesc}};
  EXPECT_TRUE(r.IsSortedBy(keys));
}

TEST(EnumeratorTest, AlternativeVisitOrderPizzaItemDate) {
  // Example 9: T1 supports (pizza, item, price) among others.
  Pizzeria p = MakePizzeria();
  std::vector<int> visit = {p.n_pizza, p.n_item, p.n_price, p.n_date,
                            p.n_customer};
  Relation r = EnumerateToRelation(p.view(), visit,
                                   std::vector<SortDir>(5, SortDir::kAsc));
  std::vector<SortKey> keys = {{p.attr("pizza"), SortDir::kAsc},
                               {p.attr("item"), SortDir::kAsc}};
  EXPECT_TRUE(r.IsSortedBy(keys));
  EXPECT_EQ(r.size(), 13);
}

TEST(EnumeratorTest, ChildBeforeParentThrows) {
  Pizzeria p = MakePizzeria();
  std::vector<int> bad = {p.n_date, p.n_pizza, p.n_customer, p.n_item,
                          p.n_price};
  EXPECT_THROW(
      Enumerator(p.view(), bad, std::vector<SortDir>(5, SortDir::kAsc)),
      std::invalid_argument);
}

TEST(EnumeratorTest, EmptyFactorisationYieldsNothing) {
  FTree t;
  t.AddNode({0}, -1);
  Factorisation f(t, {MakeLeaf({})});
  Enumerator e(f);
  EXPECT_FALSE(e.Next());
}

TEST(EnumeratorTest, LimitStopsEarly) {
  Pizzeria p = MakePizzeria();
  Relation r = EnumerateToRelation(
      p.view(), p.view().tree().TopologicalOrder(),
      std::vector<SortDir>(5, SortDir::kAsc), 4);
  EXPECT_EQ(r.size(), 4);
}

TEST(EnumeratorTest, EquivalenceClassExpandsToAllAttributes) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("na"), b = reg.Intern("nb");
  FTree t;
  t.AddNode({a, b}, -1);
  Factorisation f(t, {MakeLeaf({Value(1), Value(2)})});
  Enumerator e(f);
  EXPECT_EQ(e.schema().arity(), 2);
  Tuple row(2);
  ASSERT_TRUE(e.Next());
  e.Fill(&row);
  EXPECT_EQ(row[0], row[1]);
}

TEST(GroupAggEnumeratorTest, RevenuePerCustomerOnTheFly) {
  // Scenario 3 of Example 1: group nodes on top, aggregate the rest on the
  // fly. Push customer to the root first.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  std::vector<int> plan =
      PlanRestructure(f.tree(), {}, {p.n_customer});
  for (int b : plan) ApplySwap(&f, b);
  ASSERT_TRUE(SupportsGrouping(f.tree(), {p.n_customer}));

  AttrId out = p.db->registry().Intern("revenue");
  GroupAggEnumerator e(f, {p.n_customer}, {SortDir::kAsc},
                       {{AggFn::kSum, p.attr("price")}}, {out});
  Relation r{e.schema()};
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    r.Add(row);
  }
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r.rows()[0][0].as_string(), "Lucia");
  EXPECT_EQ(r.rows()[0][1].as_int(), 9);
  EXPECT_EQ(r.rows()[1][0].as_string(), "Mario");
  EXPECT_EQ(r.rows()[1][1].as_int(), 22);
  EXPECT_EQ(r.rows()[2][0].as_string(), "Pietro");
  EXPECT_EQ(r.rows()[2][1].as_int(), 9);
}

TEST(GroupAggEnumeratorTest, MultipleTasksAndGroups) {
  // Per pizza: count of joined tuples and min price, straight off T1.
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  AttrId c_out = p.db->registry().Intern("cnt_out");
  AttrId m_out = p.db->registry().Intern("min_out");
  GroupAggEnumerator e(
      f, {p.n_pizza}, {SortDir::kAsc},
      {{AggFn::kCount, kInvalidAttr}, {AggFn::kMin, p.attr("price")}},
      {c_out, m_out});
  Relation r{e.schema()};
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    r.Add(row);
  }
  ASSERT_EQ(r.size(), 3);
  // Capricciosa: 2 orders × 3 items = 6 tuples, min price 1.
  EXPECT_EQ(r.rows()[0][1].as_int(), 6);
  EXPECT_EQ(r.rows()[0][2].as_int(), 1);
  // Hawaii: 2 customers × 3 items = 6, min 1.
  EXPECT_EQ(r.rows()[1][1].as_int(), 6);
  // Margherita: 1 × 1 = 1, min 6.
  EXPECT_EQ(r.rows()[2][1].as_int(), 1);
  EXPECT_EQ(r.rows()[2][2].as_int(), 6);
}

TEST(GroupAggEnumeratorTest, TwoLevelGroupingDescending) {
  Pizzeria p = MakePizzeria();
  const Factorisation& f = p.view();
  AttrId out = p.db->registry().Intern("psum");
  GroupAggEnumerator e(f, {p.n_pizza, p.n_date},
                       {SortDir::kDesc, SortDir::kAsc},
                       {{AggFn::kSum, p.attr("price")}}, {out});
  Relation r{e.schema()};
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    r.Add(row);
  }
  // Groups: (pizza, date) pairs: Capricciosa×2, Hawaii×1, Margherita×1.
  ASSERT_EQ(r.size(), 4);
  EXPECT_EQ(r.rows()[0][0].as_string(), "Margherita");
  EXPECT_EQ(r.rows()[3][0].as_string(), "Capricciosa");
  // Hawaii Friday: sum price = 9 per item set × 2 customers = 18.
  EXPECT_EQ(r.rows()[1][0].as_string(), "Hawaii");
  EXPECT_EQ(r.rows()[1][2].as_int(), 18);
}

TEST(GroupAggEnumeratorTest, NonTopFragmentThrows) {
  Pizzeria p = MakePizzeria();
  // customer's parent (date) is not in the grouping set: Theorem 1 fails.
  EXPECT_THROW(GroupAggEnumerator(p.view(), {p.n_customer}, {SortDir::kAsc},
                                  {{AggFn::kCount, kInvalidAttr}},
                                  {p.attr("price")}),
               std::invalid_argument);
}

TEST(GroupAggEnumeratorTest, GroupingFreeRootTreesMultiplyIn) {
  // Forest: grouping over root A, with an independent tree B whose count
  // multiplies into every group.
  AttributeRegistry reg;
  AttrId a = reg.Intern("pa"), b = reg.Intern("pb");
  FTree t;
  int na = t.AddNode({a}, -1);
  t.AddNode({b}, -1);
  Factorisation f(
      t, {MakeLeaf({Value(1), Value(2)}), MakeLeaf({Value(5), Value(6)})});
  AttrId out = reg.Intern("cnt2");
  GroupAggEnumerator e(f, {na}, {SortDir::kAsc},
                       {{AggFn::kCount, kInvalidAttr}}, {out});
  Relation r{e.schema()};
  Tuple row(2);
  while (e.Next()) {
    e.Fill(&row);
    r.Add(row);
  }
  ASSERT_EQ(r.size(), 2);
  EXPECT_EQ(r.rows()[0][1].as_int(), 2);  // two b values each
  EXPECT_EQ(r.rows()[1][1].as_int(), 2);
}

}  // namespace
}  // namespace fdb
