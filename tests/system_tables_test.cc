#include "fdb/engine/database.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/obs/log.h"
#include "fdb/obs/sampler.h"
#include "fdb/obs/statements.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameBag;

// Runs `sql` through both engines and asserts identical results — the
// acceptance bar for every system table (they are ordinary relations to
// the planner, so both paths must serve the same snapshot).
void ExpectEnginesAgree(Pizzeria& p, const std::string& sql) {
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  FdbResult fr = fdb.ExecuteSql(sql);
  RdbResult rr = rdb.ExecuteSql(sql);
  EXPECT_TRUE(SameBag(fr.flat, rr.flat, p.db->registry())) << sql;
}

class SystemTablesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SetLogEnabled(true);
    obs::StatementStore::Instance().Clear();
    obs::EventLog::Instance().Clear();
  }
  void TearDown() override {
    obs::StatementStore::Instance().Clear();
    obs::EventLog::Instance().Clear();
    obs::SetLogEnabled(false);
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(SystemTablesTest, StatementsTableServedIdenticallyByBothEngines) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  fdb.ExecuteSql("SELECT customer, sum(price) FROM R GROUP BY customer");
  fdb.ExecuteSql("SELECT customer, sum(price) FROM R GROUP BY customer");
  rdb.ExecuteSql("SELECT pizza FROM R WHERE price < 5");

  FdbResult fr = fdb.ExecuteSql("SELECT * FROM fdb.statements");
  RdbResult rr = rdb.ExecuteSql("SELECT * FROM fdb.statements");
  EXPECT_EQ(fr.flat.size(), 2u);  // two distinct statement shapes
  EXPECT_TRUE(SameBag(fr.flat, rr.flat, p.db->registry()));

  ExpectEnginesAgree(p, "SELECT fingerprint, calls, errors FROM "
                        "fdb.statements");
  ExpectEnginesAgree(p, "SELECT query, calls FROM fdb.statements "
                        "ORDER BY query");
  ExpectEnginesAgree(p, "SELECT fingerprint FROM fdb.statements "
                        "WHERE calls > 1");
}

TEST_F(SystemTablesTest, StatementsTableReflectsRecordedAggregates) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  fdb.ExecuteSql("SELECT customer FROM R WHERE price < 3");
  fdb.ExecuteSql("SELECT customer FROM R WHERE price < 7");
  rdb.ExecuteSql("SELECT customer FROM R WHERE price < 5");

  FdbResult r = fdb.ExecuteSql(
      "SELECT calls, calls_fdb, calls_rdb, errors FROM fdb.statements");
  ASSERT_EQ(r.flat.size(), 1u);
  const Tuple& row = r.flat.rows()[0];
  EXPECT_EQ(row[0].as_int(), 3);
  EXPECT_EQ(row[1].as_int(), 2);
  EXPECT_EQ(row[2].as_int(), 1);
  EXPECT_EQ(row[3].as_int(), 0);
}

TEST_F(SystemTablesTest, IntrospectionDoesNotRecordItself) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  for (int i = 0; i < 3; ++i) {
    fdb.ExecuteSql("SELECT calls FROM fdb.statements");
    fdb.ExecuteSql("SELECT seq FROM fdb.events");
  }
  EXPECT_EQ(obs::StatementStore::Instance().size(), 0u)
      << "system-table queries must not pollute the statement store";
}

TEST_F(SystemTablesTest, EventsTableServedIdenticallyByBothEngines) {
  Pizzeria p = MakePizzeria();
  obs::EventLog::Instance().Emit(
      obs::EventType::kSave,
      {obs::F("path", "/tmp/a.fdbs"), obs::F("bytes", int64_t{123})});
  obs::EventLog::Instance().Emit(
      obs::EventType::kCheckpoint,
      {obs::F("path", "/tmp/b.fdbs"), obs::F("kind", "base")});

  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql("SELECT * FROM fdb.events");
  EXPECT_EQ(r.flat.size(), 2u);

  ExpectEnginesAgree(p, "SELECT * FROM fdb.events");
  ExpectEnginesAgree(p, "SELECT seq, event_type FROM fdb.events "
                        "ORDER BY seq DESC");
  ExpectEnginesAgree(p, "SELECT event_type, count(*) FROM fdb.events "
                        "GROUP BY event_type");
}

TEST_F(SystemTablesTest, MetricsHistoryEmptyWithoutSampler) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql("SELECT * FROM fdb.metrics_history");
  EXPECT_EQ(r.flat.size(), 0u);  // schema-only, not an error
  ExpectEnginesAgree(p, "SELECT * FROM fdb.metrics_history");
}

TEST_F(SystemTablesTest, MetricsHistoryServedIdenticallyByBothEngines) {
  Pizzeria p = MakePizzeria();
  // Deterministic history: synchronous samples, no background thread.
  p.db->StartMetricsSampler(/*interval_ms=*/3600 * 1000);
  // Three synchronous samples: "sampler.ticks" itself only registers at
  // the end of the first one, so its history starts at tick 2.
  p.db->metrics_sampler()->SampleOnce();
  p.db->metrics_sampler()->SampleOnce();
  p.db->metrics_sampler()->SampleOnce();

  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT metric, tick FROM fdb.metrics_history WHERE metric = "
      "'sampler.ticks'");
  EXPECT_GE(r.flat.size(), 2u);

  ExpectEnginesAgree(p, "SELECT * FROM fdb.metrics_history");
  ExpectEnginesAgree(p, "SELECT metric, value FROM fdb.metrics_history "
                        "WHERE tick = 1");
  ExpectEnginesAgree(p, "SELECT metric, count(*) FROM fdb.metrics_history "
                        "GROUP BY metric ORDER BY metric LIMIT 5");
  p.db->StopMetricsSampler();
}

TEST_F(SystemTablesTest, UnknownSystemTableErrors) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  EXPECT_THROW(fdb.ExecuteSql("SELECT * FROM fdb.nope"), std::exception);
  EXPECT_THROW(rdb.ExecuteSql("SELECT * FROM fdb.nope"), std::exception);
  EXPECT_FALSE(Database::IsSystemTable("fdb.nope"));
  EXPECT_TRUE(Database::IsSystemTable("fdb.statements"));
  EXPECT_TRUE(Database::IsSystemTable("fdb.events"));
  EXPECT_TRUE(Database::IsSystemTable("fdb.metrics_history"));
}

TEST_F(SystemTablesTest, SystemTablesJoinRegularPlanning) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  fdb.ExecuteSql("SELECT customer FROM R");
  // Aggregates, HAVING, and LIMIT all work over a system table.
  ExpectEnginesAgree(p, "SELECT query FROM fdb.statements LIMIT 1");
  ExpectEnginesAgree(p,
                     "SELECT event_type, count(*) AS n FROM fdb.events "
                     "GROUP BY event_type HAVING n > 0");
}

}  // namespace
}  // namespace fdb
