#include "fdb/query/parser.h"

#include <gtest/gtest.h>

namespace fdb {
namespace {

TEST(ParserTest, MinimalSelectStar) {
  ParsedQuery q = ParseSql("SELECT * FROM R");
  EXPECT_TRUE(q.select_star);
  EXPECT_EQ(q.from, std::vector<std::string>{"R"});
  EXPECT_TRUE(q.where.empty());
  EXPECT_FALSE(q.limit.has_value());
}

TEST(ParserTest, ColumnsAndAliases) {
  ParsedQuery q = ParseSql("SELECT a, b AS bee FROM R");
  ASSERT_EQ(q.items.size(), 2u);
  EXPECT_EQ(q.items[0].column, "a");
  EXPECT_FALSE(q.items[0].agg.has_value());
  EXPECT_EQ(q.items[1].alias, "bee");
}

TEST(ParserTest, AggregatesAllFunctions) {
  ParsedQuery q = ParseSql(
      "SELECT count(*), sum(x), min(y), max(z), avg(w) FROM R");
  ASSERT_EQ(q.items.size(), 5u);
  EXPECT_EQ(*q.items[0].agg, ParseAggFn::kCount);
  EXPECT_TRUE(q.items[0].column.empty());
  EXPECT_EQ(*q.items[1].agg, ParseAggFn::kSum);
  EXPECT_EQ(q.items[1].column, "x");
  EXPECT_EQ(*q.items[2].agg, ParseAggFn::kMin);
  EXPECT_EQ(*q.items[3].agg, ParseAggFn::kMax);
  EXPECT_EQ(*q.items[4].agg, ParseAggFn::kAvg);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  ParsedQuery q = ParseSql(
      "select Sum(price) as revenue from R group by customer");
  EXPECT_EQ(*q.items[0].agg, ParseAggFn::kSum);
  EXPECT_EQ(q.items[0].alias, "revenue");
  EXPECT_EQ(q.group_by, std::vector<std::string>{"customer"});
}

TEST(ParserTest, MultipleFromRelations) {
  ParsedQuery q = ParseSql("SELECT * FROM Orders, Packages, Items");
  EXPECT_EQ(q.from.size(), 3u);
  EXPECT_EQ(q.from[2], "Items");
}

TEST(ParserTest, WhereConjunctions) {
  ParsedQuery q = ParseSql(
      "SELECT * FROM R WHERE a = b AND c > 5 AND d = 'x' AND e <= 2.5");
  ASSERT_EQ(q.where.size(), 4u);
  EXPECT_TRUE(q.where[0].rhs_is_attr);
  EXPECT_EQ(q.where[0].rhs_attr, "b");
  EXPECT_EQ(q.where[1].op, CmpOp::kGt);
  EXPECT_EQ(q.where[1].rhs_const.as_int(), 5);
  EXPECT_EQ(q.where[2].rhs_const.as_string(), "x");
  EXPECT_DOUBLE_EQ(q.where[3].rhs_const.as_double(), 2.5);
}

TEST(ParserTest, AllComparisonOperators) {
  ParsedQuery q = ParseSql(
      "SELECT * FROM R WHERE a = 1 AND b <> 2 AND c != 3 AND d < 4 AND "
      "e <= 5 AND f > 6 AND g >= 7");
  ASSERT_EQ(q.where.size(), 7u);
  EXPECT_EQ(q.where[1].op, CmpOp::kNe);
  EXPECT_EQ(q.where[2].op, CmpOp::kNe);
  EXPECT_EQ(q.where[3].op, CmpOp::kLt);
  EXPECT_EQ(q.where[6].op, CmpOp::kGe);
}

TEST(ParserTest, NegativeNumbers) {
  ParsedQuery q = ParseSql("SELECT * FROM R WHERE a = -5");
  EXPECT_EQ(q.where[0].rhs_const.as_int(), -5);
}

TEST(ParserTest, GroupByHavingOrderByLimit) {
  ParsedQuery q = ParseSql(
      "SELECT customer, sum(price) AS revenue FROM R "
      "WHERE price > 0 GROUP BY customer HAVING sum(price) >= 10 "
      "AND count(*) > 1 ORDER BY revenue DESC, customer LIMIT 10");
  EXPECT_EQ(q.group_by, std::vector<std::string>{"customer"});
  ASSERT_EQ(q.having.size(), 2u);
  EXPECT_EQ(*q.having[0].agg, ParseAggFn::kSum);
  EXPECT_EQ(q.having[0].op, CmpOp::kGe);
  EXPECT_EQ(*q.having[1].agg, ParseAggFn::kCount);
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_EQ(q.order_by[0].column, "revenue");
  EXPECT_EQ(q.order_by[0].dir, SortDir::kDesc);
  EXPECT_EQ(q.order_by[1].dir, SortDir::kAsc);
  EXPECT_EQ(*q.limit, 10);
}

TEST(ParserTest, HavingAliasForm) {
  ParsedQuery q =
      ParseSql("SELECT sum(x) AS s FROM R GROUP BY g HAVING s > 3");
  ASSERT_EQ(q.having.size(), 1u);
  EXPECT_FALSE(q.having[0].agg.has_value());
  EXPECT_EQ(q.having[0].column, "s");
}

TEST(ParserTest, DistinctFlag) {
  ParsedQuery q = ParseSql("SELECT DISTINCT a, b FROM R");
  EXPECT_TRUE(q.distinct);
  EXPECT_EQ(q.items.size(), 2u);
}

TEST(ParserTest, OrderByAscExplicit) {
  ParsedQuery q = ParseSql("SELECT * FROM R ORDER BY a ASC, b DESC");
  EXPECT_EQ(q.order_by[0].dir, SortDir::kAsc);
  EXPECT_EQ(q.order_by[1].dir, SortDir::kDesc);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_NO_THROW(ParseSql("SELECT * FROM R;"));
}

TEST(ParserTest, ToSqlRoundTripReparses) {
  std::string sql =
      "SELECT customer, sum(price) AS revenue FROM Orders, Items WHERE "
      "price > 1 GROUP BY customer HAVING count(*) > 2 ORDER BY revenue "
      "DESC LIMIT 5";
  ParsedQuery q1 = ParseSql(sql);
  ParsedQuery q2 = ParseSql(ToSql(q1));
  EXPECT_EQ(ToSql(q1), ToSql(q2));
}

TEST(ParserTest, ErrorMissingFrom) {
  EXPECT_THROW(ParseSql("SELECT a"), std::invalid_argument);
}

TEST(ParserTest, ErrorUnterminatedString) {
  EXPECT_THROW(ParseSql("SELECT * FROM R WHERE a = 'oops"),
               std::invalid_argument);
}

TEST(ParserTest, ErrorTrailingGarbage) {
  EXPECT_THROW(ParseSql("SELECT * FROM R garbage here"),
               std::invalid_argument);
}

TEST(ParserTest, ErrorStarArgumentOnSum) {
  EXPECT_THROW(ParseSql("SELECT sum(*) FROM R"), std::invalid_argument);
}

TEST(ParserTest, ErrorMissingParen) {
  EXPECT_THROW(ParseSql("SELECT sum(a FROM R"), std::invalid_argument);
}

TEST(ParserTest, ErrorLimitNotInteger) {
  EXPECT_THROW(ParseSql("SELECT * FROM R LIMIT x"), std::invalid_argument);
  EXPECT_THROW(ParseSql("SELECT * FROM R LIMIT 2.5"), std::invalid_argument);
}

TEST(ParserTest, ErrorHavingAgainstAttribute) {
  EXPECT_THROW(ParseSql("SELECT sum(a) FROM R GROUP BY g HAVING sum(a) > b"),
               std::invalid_argument);
}

TEST(ParserTest, ErrorMessageIncludesPosition) {
  try {
    ParseSql("SELECT * FROM R WHERE ???");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos);
  }
}

}  // namespace
}  // namespace fdb
