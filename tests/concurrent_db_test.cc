// Concurrency stress tests for the execution runtime: the enumerator's
// pinned-arena guarantee under concurrent updates driving generational
// compaction, and the Database's epoch-style versioned view map (readers
// on shared snapshots, writers building off-line and swapping). All of
// these must run clean under TSan (see the ci tsan job).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/query/parser.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

Factorisation MakePathView(Database* db, const std::string& prefix,
                           int64_t rows) {
  AttrId a = db->Attr(prefix + "_a"), b = db->Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x), Value(x * 2)});
  return FactoriseRelation(r, {a, b});
}

TEST(ConcurrentDbTest, EnumerationPinsArenaAcrossConcurrentCompaction) {
  Database db;
  Factorisation f = MakePathView(&db, "cc_pin", 3000);
  Relation expected = f.Flatten();

  // Snapshot the factorisation before the updater starts: from here on
  // the enumerator only touches its captured roots and pinned arenas.
  Enumerator e(f);
  const FactArena* arena_at_start = f.arena().get();

  std::thread updater([&] {
    // Persistent insert/delete churn; the 4x watermark fires MaybeCompact
    // inside the update path, retiring arenas the enumerator must outlive.
    for (int64_t i = 0; i < 1500; ++i) {
      InsertTuple(&f, Row({100000 + i, 1}));
      DeleteTuple(&f, Row({100000 + i, 1}));
    }
  });

  Relation got(e.schema());
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    got.Add(row);
  }
  updater.join();

  // The enumeration saw exactly the construction-time version.
  EXPECT_EQ(got.rows(), expected.rows());
  // The churn actually compacted (arena generation moved on) — otherwise
  // this test exercises nothing.
  EXPECT_NE(f.arena().get(), arena_at_start);
  // And the source is still intact.
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(testing::SameBag(f.Flatten(), expected, db.registry()));
}

TEST(ConcurrentDbTest, EpochReadersNeverBlockOnWriters) {
  Database db;
  constexpr int64_t kBase = 2000;
  constexpr int64_t kWrites = 400;
  db.AddView("V", MakePathView(&db, "cc_epoch", kBase));

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const Factorisation> v = db.ViewSnapshot("V");
        ASSERT_NE(v, nullptr);
        // Each snapshot is an internally consistent version: every
        // insert lands whole or not at all.
        int64_t n = v->CountTuples();
        ASSERT_GE(n, kBase);
        ASSERT_LE(n, kBase + kWrites);
        ASSERT_TRUE(v->Validate());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Let the readers take at least one snapshot of the base version, then
  // race them against the writer.
  while (reads.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (int64_t i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(db.UpdateView("V", [&](Factorisation* f) {
      InsertTuple(f, Row({500000 + i, 7}));
    }));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0);
  EXPECT_EQ(db.ViewSnapshot("V")->CountTuples(), kBase + kWrites);
}

TEST(ConcurrentDbTest, SnapshotOutlivesSwapsAndCompaction) {
  Database db;
  db.AddView("V", MakePathView(&db, "cc_old", 500));
  std::shared_ptr<const Factorisation> old = db.ViewSnapshot("V");
  Relation before = old->Flatten();

  // Replace the view version many times; force compactions on the way.
  for (int64_t i = 0; i < 300; ++i) {
    db.UpdateView("V", [&](Factorisation* f) {
      InsertTuple(f, Row({700000 + i, 1}));
      DeleteTuple(f, Row({700000 + i, 1}));
    });
  }
  db.AddView("W", MakePathView(&db, "cc_new", 10));

  // The old snapshot still reads its version, bit for bit.
  EXPECT_EQ(old->Flatten().rows(), before.rows());
  EXPECT_TRUE(old->Validate());
}

TEST(ConcurrentDbTest, ConcurrentBindAndAggregateExecution) {
  // Binding interns select-item aliases and aggregate execution interns
  // result names into the shared AttributeRegistry: both must be safe
  // (and converge on one id per name) from many query threads.
  Database db;
  AttrId x = db.Attr("cba_x"), y = db.Attr("cba_y");
  Relation r{RelSchema({x, y})};
  for (int64_t i = 0; i < 100; ++i) r.Add({Value(i % 10), Value(i)});
  db.AddRelation("T", r);
  db.AddView("TV", FactoriseRelation(r, {x, y}));

  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      FdbEngine engine(&db);
      for (int rep = 0; rep < 20; ++rep) {
        // Shared alias: all threads must resolve to one AttrId.
        FdbResult res = engine.ExecuteSql(
            "SELECT cba_x, sum(cba_y) AS shared_total FROM TV "
            "GROUP BY cba_x");
        if (res.flat.size() != 10) ok.store(false);
        // Thread-unique alias: exercises the fresh-intern path.
        engine.ExecuteSql("SELECT cba_x, sum(cba_y) AS t" +
                          std::to_string(t) + "_" + std::to_string(rep) +
                          " FROM TV GROUP BY cba_x");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_TRUE(db.registry().Find("shared_total").has_value());
}

TEST(ConcurrentDbTest, QueryTimeBuildRacesOutOfOrderInterns) {
  // TrieBuilder::Prepare sorts on absolute rank keys; FreezeRanks must
  // keep a whole key batch mutually consistent while another thread
  // interns out-of-order strings (each such intern shifts the ranks of
  // every larger string, including this relation's).
  Database db;
  AttrId a = db.Attr("qtb_a"), b = db.Attr("qtb_b");
  Relation r{RelSchema({a, b})};
  for (int i = 0; i < 300; ++i) {
    r.Add({Value("qtb_k" + std::to_string(1000 + i % 40)),
           Value(int64_t{i})});
  }
  db.AddRelation("S", r);  // bulk-interns the keys in sorted order
  Relation expected = FactoriseRelation(r, {a, b}).Flatten();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Lexicographically descending: every intern splices mid-order.
    for (int i = 2000; i > 0 && !stop.load(std::memory_order_relaxed);
         --i) {
      ValueDict::Default().Intern("qta_" + std::to_string(100000 + i));
    }
  });
  for (int rep = 0; rep < 10; ++rep) {
    Factorisation f = FactoriseRelation(r, {a, b});
    ASSERT_TRUE(f.Validate());
    ASSERT_EQ(f.Flatten().rows(), expected.rows());
  }
  stop.store(true);
  writer.join();
}

TEST(ConcurrentDbTest, UpdateViewMissingReturnsFalse) {
  Database db;
  EXPECT_FALSE(db.UpdateView("nope", [](Factorisation*) { FAIL(); }));
}

TEST(ConcurrentDbTest, ConcurrentQueriesOnSharedView) {
  // Many reader threads enumerate one published view concurrently while
  // a writer churns another name in the same database: epochs isolate
  // them completely.
  Database db;
  db.AddView("R", MakePathView(&db, "cc_q", 1000));
  db.AddView("W", MakePathView(&db, "cc_w", 100));
  Relation expected = db.ViewSnapshot("R")->Flatten();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      db.UpdateView("W", [&](Factorisation* f) {
        InsertTuple(f, Row({900000 + i, 1}));
      });
      ++i;
    }
  });

  std::vector<std::thread> readers;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int rep = 0; rep < 5; ++rep) {
        std::shared_ptr<const Factorisation> v = db.ViewSnapshot("R");
        if (v->Flatten().rows() != expected.rows()) ok.store(false);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace fdb
