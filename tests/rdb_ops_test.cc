#include "fdb/relational/rdb_ops.h"

#include <gtest/gtest.h>

#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;
using testing::SameBag;

class RdbOpsTest : public ::testing::Test {
 protected:
  RdbOpsTest() {
    a_ = reg_.Intern("a");
    b_ = reg_.Intern("b");
    c_ = reg_.Intern("c");
    d_ = reg_.Intern("d");
    r_ = Relation{RelSchema({a_, b_})};
    r_.Add(Row({1, 10}));
    r_.Add(Row({2, 20}));
    r_.Add(Row({2, 21}));
    r_.Add(Row({3, 30}));
    s_ = Relation{RelSchema({b_, c_})};
    s_.Add(Row({10, 100}));
    s_.Add(Row({20, 200}));
    s_.Add(Row({20, 201}));
    s_.Add(Row({99, 999}));
  }

  AttributeRegistry reg_;
  AttrId a_, b_, c_, d_;
  Relation r_, s_;
};

TEST_F(RdbOpsTest, SelectConstOperators) {
  EXPECT_EQ(SelectConst(r_, a_, CmpOp::kEq, Value(2)).size(), 2);
  EXPECT_EQ(SelectConst(r_, a_, CmpOp::kNe, Value(2)).size(), 2);
  EXPECT_EQ(SelectConst(r_, a_, CmpOp::kLt, Value(2)).size(), 1);
  EXPECT_EQ(SelectConst(r_, a_, CmpOp::kGe, Value(2)).size(), 3);
  EXPECT_THROW(SelectConst(r_, d_, CmpOp::kEq, Value(1)),
               std::invalid_argument);
}

TEST_F(RdbOpsTest, SelectAttrEq) {
  Relation r{RelSchema({a_, b_})};
  r.Add(Row({1, 1}));
  r.Add(Row({1, 2}));
  EXPECT_EQ(SelectAttrEq(r, a_, b_).size(), 1);
}

TEST_F(RdbOpsTest, ProjectWithAndWithoutDedup) {
  Relation p1 = Project(r_, {a_}, /*dedup=*/false);
  EXPECT_EQ(p1.size(), 4);
  Relation p2 = Project(r_, {a_}, /*dedup=*/true);
  EXPECT_EQ(p2.size(), 3);
  // Column reordering.
  Relation p3 = Project(r_, {b_, a_}, false);
  EXPECT_EQ(p3.schema().attr(0), b_);
  EXPECT_EQ(p3.rows()[0][0].as_int(), 10);
}

TEST_F(RdbOpsTest, NaturalJoinSharedAttr) {
  Relation j = NaturalJoin(r_, s_);
  // b=10 ×1, b=20: two r-rows? a=2,b=20 and a=2,b=21: only b=20 matches the
  // two s rows 200/201 → 1 + 2 = 3 rows.
  EXPECT_EQ(j.size(), 3);
  EXPECT_EQ(j.schema().arity(), 3);
  EXPECT_EQ(j.schema().attr(0), a_);
  EXPECT_EQ(j.schema().attr(2), c_);
}

TEST_F(RdbOpsTest, NaturalJoinNoSharedAttrsIsProduct) {
  Relation t{RelSchema({c_, d_})};
  t.Add(Row({7, 70}));
  t.Add(Row({8, 80}));
  Relation j = NaturalJoin(r_, t);
  EXPECT_EQ(j.size(), r_.size() * 2);
}

TEST_F(RdbOpsTest, NaturalJoinMatchesSortMergeJoin) {
  Relation h = NaturalJoin(r_, s_);
  Relation m = SortMergeJoin(r_, s_);
  EXPECT_TRUE(SameBag(h, m, reg_)) << "hash vs sort-merge divergence";
}

TEST_F(RdbOpsTest, JoinBuildSideSwapKeepsSchema) {
  // right smaller than left triggers the swapped build.
  Relation small{RelSchema({b_, c_})};
  small.Add(Row({10, 1}));
  Relation j = NaturalJoin(r_, small);
  EXPECT_EQ(j.schema().attr(0), a_);
  EXPECT_EQ(j.size(), 1);
}

TEST_F(RdbOpsTest, NaturalJoinAllChains) {
  Relation t{RelSchema({c_, d_})};
  t.Add(Row({100, 1}));
  t.Add(Row({200, 2}));
  Relation j = NaturalJoinAll({&r_, &s_, &t});
  EXPECT_EQ(j.schema().arity(), 4);
  EXPECT_EQ(j.size(), 2);  // (1,10,100,1) and (2,20,200,2); 201 dangles
}

TEST_F(RdbOpsTest, SortGroupAggregateSumCount) {
  std::vector<AttrId> out_ids = {reg_.Intern("s"), reg_.Intern("n")};
  Relation g = SortGroupAggregate(
      r_, {a_}, {{AggFn::kSum, b_}, {AggFn::kCount, kInvalidAttr}}, out_ids);
  ASSERT_EQ(g.size(), 3);
  EXPECT_EQ(g.rows()[1][0].as_int(), 2);
  EXPECT_EQ(g.rows()[1][1].as_int(), 41);  // 20+21
  EXPECT_EQ(g.rows()[1][2].as_int(), 2);
}

TEST_F(RdbOpsTest, HashGroupAggregateMatchesSort) {
  std::vector<AttrId> out_ids = {reg_.Intern("s2"), reg_.Intern("mn"),
                                 reg_.Intern("mx")};
  std::vector<AggTask> tasks = {{AggFn::kSum, b_},
                                {AggFn::kMin, b_},
                                {AggFn::kMax, b_}};
  Relation gs = SortGroupAggregate(r_, {a_}, tasks, out_ids);
  Relation gh = HashGroupAggregate(r_, {a_}, tasks, out_ids);
  EXPECT_TRUE(SameBag(gs, gh, reg_));
}

TEST_F(RdbOpsTest, GlobalAggregateOnEmptyInput) {
  Relation empty{RelSchema({a_, b_})};
  std::vector<AttrId> out_ids = {reg_.Intern("cnt"), reg_.Intern("sm")};
  Relation g = SortGroupAggregate(
      empty, {}, {{AggFn::kCount, kInvalidAttr}, {AggFn::kSum, b_}},
      out_ids);
  ASSERT_EQ(g.size(), 1);
  EXPECT_EQ(g.rows()[0][0].as_int(), 0);
  EXPECT_TRUE(g.rows()[0][1].is_null());
}

TEST_F(RdbOpsTest, GroupedAggregateOnEmptyInputHasNoRows) {
  Relation empty{RelSchema({a_, b_})};
  Relation g = SortGroupAggregate(empty, {a_},
                                  {{AggFn::kCount, kInvalidAttr}},
                                  {reg_.Intern("cnt3")});
  EXPECT_TRUE(g.empty());
}

TEST_F(RdbOpsTest, GroupAggregateUnknownAttrsThrow) {
  EXPECT_THROW(SortGroupAggregate(r_, {d_}, {{AggFn::kCount, kInvalidAttr}},
                                  {reg_.Intern("x1")}),
               std::invalid_argument);
  EXPECT_THROW(SortGroupAggregate(r_, {a_}, {{AggFn::kSum, d_}},
                                  {reg_.Intern("x2")}),
               std::invalid_argument);
}

TEST_F(RdbOpsTest, LimitReturnsPrefix) {
  Relation l = Limit(r_, 2);
  EXPECT_EQ(l.size(), 2);
  EXPECT_EQ(l.rows()[0][0].as_int(), 1);
  EXPECT_EQ(Limit(r_, 100).size(), 4);
  EXPECT_EQ(Limit(r_, 0).size(), 0);
}

// Differential: hash join vs sort-merge join on random inputs.
class JoinProperty : public ::testing::TestWithParam<int> {};

TEST_P(JoinProperty, HashEqualsSortMerge) {
  Database db;
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam() + 500);
  spec.num_relations = 2;
  spec.rows = 40;
  spec.domain = 5;
  RandomDb rdb =
      GenerateChainDb(&db, "j" + std::to_string(GetParam()), spec);
  const Relation* r1 = db.relation(rdb.relation_names[0]);
  const Relation* r2 = db.relation(rdb.relation_names[1]);
  EXPECT_TRUE(testing::SameBag(NaturalJoin(*r1, *r2),
                               SortMergeJoin(*r1, *r2), db.registry()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace fdb
