#include "fdb/core/ops/project.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/swap.h"
#include "fdb/relational/rdb_ops.h"
#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameSet;

TEST(ProjectTest, TopPathProjection) {
  // π_{pizza, date} on T1: both on the top path, no restructuring needed.
  Pizzeria p = MakePizzeria();
  Factorisation f =
      ProjectToTopFragment(p.view(), {p.n_pizza, p.n_date});
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(f.tree().SatisfiesPathConstraint());
  Relation expect = Project(
      NaturalJoinAll({p.db->relation("Orders"), p.db->relation("Pizzas"),
                      p.db->relation("Items")}),
      {p.attr("pizza"), p.attr("date")}, /*dedup=*/true);
  EXPECT_TRUE(SameSet(f.Flatten(), expect, expect.schema().attrs(),
                      p.db->registry()));
  EXPECT_EQ(f.CountTuples(), 4);  // distinct (pizza, date) pairs
}

TEST(ProjectTest, BranchingFragmentKeepsBothBranches) {
  // π_{pizza, date, item}: keeps the branch tops, drops customer & price.
  Pizzeria p = MakePizzeria();
  Factorisation f =
      ProjectToTopFragment(p.view(), {p.n_pizza, p.n_date, p.n_item});
  Relation expect = Project(
      NaturalJoinAll({p.db->relation("Orders"), p.db->relation("Pizzas"),
                      p.db->relation("Items")}),
      {p.attr("pizza"), p.attr("date"), p.attr("item")}, /*dedup=*/true);
  EXPECT_TRUE(SameSet(f.Flatten(), expect, expect.schema().attrs(),
                      p.db->registry()));
}

TEST(ProjectTest, SingleRootProjection) {
  Pizzeria p = MakePizzeria();
  Factorisation f = ProjectToTopFragment(p.view(), {p.n_pizza});
  EXPECT_EQ(f.CountTuples(), 3);
  EXPECT_EQ(f.CountSingletons(), 3);
}

TEST(ProjectTest, NonTopFragmentThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(ProjectToTopFragment(p.view(), {p.n_customer}),
               std::invalid_argument);
}

TEST(ProjectTest, RestructureThenProjectDeepAttribute) {
  // π_{customer}: push customer to the root, then project.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  for (int b : PlanRestructure(f.tree(), {}, {p.n_customer})) {
    ApplySwap(&f, b);
  }
  Factorisation proj = ProjectToTopFragment(f, {p.n_customer});
  EXPECT_EQ(proj.CountTuples(), 3);  // Lucia, Mario, Pietro
  EXPECT_TRUE(proj.Validate());
}

TEST(ProjectTest, MergedEdgesKeepDependencies) {
  // After projecting item/price away, pizza and date remain dependent via
  // the merged Orders edge, and the new tree satisfies the path constraint.
  Pizzeria p = MakePizzeria();
  Factorisation f =
      ProjectToTopFragment(p.view(), {p.n_pizza, p.n_date});
  int n_pizza = f.tree().NodeOfAttr(p.attr("pizza"));
  int n_date = f.tree().NodeOfAttr(p.attr("date"));
  EXPECT_TRUE(f.tree().NodesDependent(n_pizza, n_date));
}

TEST(ProjectTest, EmptyFactorisationStaysEmpty) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("qa"), b = reg.Intern("qb");
  Relation r{RelSchema({a, b})};
  Factorisation f = FactoriseRelation(r, {a, b});
  Factorisation proj = ProjectToTopFragment(f, {f.tree().NodeOfAttr(a)});
  EXPECT_TRUE(proj.empty());
}

// Differential: restructure + factorised projection equals relational
// distinct projection on random databases.
class ProjectProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProjectProperty, MatchesRelationalDistinctProjection) {
  Database db;
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam() + 300);
  spec.num_relations = 2;
  spec.rows = 30;
  spec.domain = 5;
  RandomDb rdb =
      GenerateChainDb(&db, "pj" + std::to_string(GetParam()), spec);
  std::vector<const Relation*> rels;
  for (const std::string& name : rdb.relation_names) {
    rels.push_back(db.relation(name));
  }
  FTree tree = ChooseFTree(rels);
  Factorisation f = FactoriseJoin(tree, rels);
  if (f.empty()) GTEST_SKIP() << "empty join";

  // Project onto the first and last chain attributes.
  AttrId a = *db.registry().Find(rdb.attr_names.front());
  AttrId b = *db.registry().Find(rdb.attr_names.back());
  std::vector<int> nodes = {f.tree().NodeOfAttr(a), f.tree().NodeOfAttr(b)};
  for (int s : PlanRestructure(f.tree(), {}, nodes)) ApplySwap(&f, s);
  nodes = {f.tree().NodeOfAttr(a), f.tree().NodeOfAttr(b)};
  Factorisation proj = ProjectToTopFragment(f, nodes);
  EXPECT_TRUE(proj.Validate());

  Relation expect =
      Project(NaturalJoinAll(rels), {a, b}, /*dedup=*/true);
  EXPECT_TRUE(SameSet(proj.Flatten(), expect, {a, b}, db.registry()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace fdb
