#include "fdb/core/ops/swap.h"

#include <gtest/gtest.h>

#include <random>

#include "fdb/core/build.h"
#include "fdb/relational/rdb_ops.h"
#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameSet;

TEST(SwapTest, SwapPreservesRepresentedRelationOnPizzeria) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  Relation before = f.Flatten();
  ApplySwap(&f, p.n_date);  // χ(pizza, date): group by date first
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(f.tree().SatisfiesPathConstraint());
  EXPECT_TRUE(SameSet(f.Flatten(), before, before.schema().attrs(),
                      p.db->registry()));
  EXPECT_EQ(f.tree().roots(), std::vector<int>{p.n_date});
}

TEST(SwapTest, SwapIsAnInvolutionOnTheRelation) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  int64_t singletons = f.CountSingletons();
  Relation before = f.Flatten();
  ApplySwap(&f, p.n_date);
  ApplySwap(&f, p.n_pizza);  // swap back
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(SameSet(f.Flatten(), before, before.schema().attrs(),
                      p.db->registry()));
  EXPECT_EQ(f.CountSingletons(), singletons);
  EXPECT_EQ(f.tree().roots(), std::vector<int>{p.n_pizza});
}

TEST(SwapTest, SwapSharesIndependentSubtrees) {
  // Swapping date up past pizza must not copy the item/price subtrees:
  // the same FactNode objects are reachable afterwards.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  const FactNode* root_before = f.roots()[0];
  // Collect item-subtree pointers before the swap (slot 1 under pizza).
  std::vector<const FactNode*> items_before;
  for (int i = 0; i < root_before->size(); ++i) {
    items_before.push_back(root_before->child(i, 2, 1));
  }
  ApplySwap(&f, p.n_date);
  // After χ(pizza,date), pizza unions hang below date; find the item kids.
  const FTree& t = f.tree();
  int slot_pizza = t.SlotOf(p.n_pizza);
  int slot_item = t.SlotOf(p.n_item);
  std::vector<const FactNode*> items_after;
  const FactNode* date_union = f.roots()[0];
  int kd = static_cast<int>(t.children(p.n_date).size());
  int kp = static_cast<int>(t.children(p.n_pizza).size());
  for (int i = 0; i < date_union->size(); ++i) {
    const FactNode* pz = date_union->child(i, kd, slot_pizza);
    for (int j = 0; j < pz->size(); ++j) {
      items_after.push_back(pz->child(j, kp, slot_item));
    }
  }
  for (const FactNode* n : items_after) {
    EXPECT_NE(std::find(items_before.begin(), items_before.end(), n),
              items_before.end())
        << "item subtree was copied instead of shared";
  }
}

TEST(SwapTest, SwapOnRootThrows) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  EXPECT_THROW(ApplySwap(&f, p.n_pizza), std::invalid_argument);
}

TEST(SwapTest, SwapLeafAggregatesStaysSorted) {
  // A two-level path a → b where b has duplicate values across a-branches:
  // after the swap the b-union at the root must be sorted and deduplicated.
  AttributeRegistry reg;
  AttrId a = reg.Intern("sa"), b = reg.Intern("sb");
  Relation r{RelSchema({a, b})};
  r.Add({Value(1), Value(9)});
  r.Add({Value(2), Value(9)});
  r.Add({Value(2), Value(3)});
  Factorisation f = FactoriseRelation(r, {a, b});
  int nb = f.tree().NodeOfAttr(b);
  ApplySwap(&f, nb);
  EXPECT_TRUE(f.Validate());
  const FactNode* root = f.roots()[0];
  ASSERT_EQ(root->size(), 2);
  EXPECT_EQ(root->values[0].as_int(), 3);
  EXPECT_EQ(root->values[1].as_int(), 9);
  // b=9 groups a ∈ {1,2}.
  EXPECT_EQ(root->child(1, 1, 0)->size(), 2);
  EXPECT_TRUE(SameSet(f.Flatten(), r, {a, b}, reg));
}

// Property: random swap sequences preserve the represented relation.
class SwapProperty : public ::testing::TestWithParam<int> {};

TEST_P(SwapProperty, RandomSwapSequencePreservesRelation) {
  Database db;
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(GetParam() + 100);
  spec.num_relations = 2 + GetParam() % 2;
  spec.rows = 25;
  spec.domain = 5;
  RandomDb rdb = GenerateChainDb(&db, "sw" + std::to_string(GetParam()),
                                 spec);
  std::vector<const Relation*> rels;
  for (const std::string& name : rdb.relation_names) {
    rels.push_back(db.relation(name));
  }
  FTree tree = ChooseFTree(rels);
  Factorisation f = FactoriseJoin(tree, rels);
  if (f.empty()) GTEST_SKIP() << "empty join for this seed";
  Relation reference = f.Flatten();
  std::vector<AttrId> cols = reference.schema().attrs();

  std::mt19937_64 rng(spec.seed);
  for (int step = 0; step < 8; ++step) {
    // Pick a random non-root live node and swap it up.
    std::vector<int> candidates;
    for (int n : f.tree().TopologicalOrder()) {
      if (f.tree().parent(n) >= 0) candidates.push_back(n);
    }
    if (candidates.empty()) break;
    int b = candidates[rng() % candidates.size()];
    ApplySwap(&f, b);
    ASSERT_TRUE(f.Validate());
    ASSERT_TRUE(f.tree().SatisfiesPathConstraint());
    ASSERT_TRUE(SameSet(f.Flatten(), reference, cols, db.registry()))
        << "swap of node " << b << " changed the relation at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwapProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace fdb
