#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FlattenCsv(const Factorisation& f, const AttributeRegistry& reg) {
  std::ostringstream out;
  WriteCsv(f.Flatten(), reg, out);
  return out.str();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

bool Exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// A database with one updatable (path-shaped) view over `rows` tuples.
/// The first attribute is grouped (100 tuples per value) so the trie
/// branches: an insert rewrites the root union and one group's subtree,
/// not a union the size of the database — the locality that makes
/// incremental checkpoints O(changes).
Database MakePathDb(int64_t rows, const std::string& prefix) {
  Database db;
  AttrId a = db.Attr(prefix + "_a"), b = db.Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x / 100), Value(x)});
  db.AddView("U", FactoriseRelation(r, {a, b}));
  return db;
}

int64_t CountDeltas(const std::string& path) {
  int64_t n = 0;
  while (Exists(storage::DeltaPath(path, n + 1))) ++n;
  return n;
}

TEST(StorageCheckpointTest, FirstCheckpointWritesABase) {
  std::string path = TempPath("ckpt_first.fdbs");
  Database db = MakePathDb(100, "ckf");
  storage::CheckpointInfo info = db.Checkpoint(path);
  EXPECT_EQ(info.kind, storage::CheckpointInfo::kBase);
  EXPECT_GT(info.bytes, 0u);
  EXPECT_EQ(CountDeltas(path), 0);
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 100);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, DeltaIsSmallAndReplaysToMonolithicState) {
  std::string path = TempPath("ckpt_delta.fdbs");
  std::string mono = TempPath("ckpt_mono.fdbs");
  Database db = MakePathDb(5000, "ckd");
  storage::CheckpointInfo base = db.Checkpoint(path);
  ASSERT_EQ(base.kind, storage::CheckpointInfo::kBase);

  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
      InsertTuple(f, Row({0, 100000 + i}));
    }));
  }
  storage::CheckpointInfo delta = db.Checkpoint(path);
  EXPECT_EQ(delta.kind, storage::CheckpointInfo::kDelta);
  EXPECT_EQ(delta.seq, 1u);
  EXPECT_TRUE(Exists(storage::DeltaPath(path, 1)));
  // O(changes), not O(database): the rewritten root union, one group's
  // subtree and 20 new leaves against 5000 rows.
  EXPECT_LT(delta.bytes * 10, base.bytes);

  // The base + delta chain opens to exactly the state a monolithic Save
  // of the same database produces.
  db.Save(mono);
  Database via_delta = Database::Open(path);
  Database via_mono = Database::Open(mono);
  ASSERT_NE(via_delta.view("U"), nullptr);
  EXPECT_EQ(via_delta.view("U")->CountTuples(), 5020);
  EXPECT_EQ(FlattenCsv(*via_delta.view("U"), via_delta.registry()),
            FlattenCsv(*via_mono.view("U"), via_mono.registry()));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
  std::remove(mono.c_str());
}

TEST(StorageCheckpointTest, NoChangesIsANoop) {
  std::string path = TempPath("ckpt_noop.fdbs");
  Database db = MakePathDb(50, "ckn");
  db.Checkpoint(path);
  storage::CheckpointInfo info = db.Checkpoint(path);
  EXPECT_EQ(info.kind, storage::CheckpointInfo::kNoop);
  EXPECT_EQ(CountDeltas(path), 0);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, IdleCheckpointIsANoopEvenPastFoldThreshold) {
  // A tripped fold threshold must not turn an idle checkpoint into a
  // full base rewrite: nothing changed, nothing is written.
  std::string path = TempPath("ckpt_idlefold.fdbs");
  Database db = MakePathDb(30, "ckf2");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  // One delta far larger than half the tiny base trips the byte fold.
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    for (int64_t i = 0; i < 300; ++i) InsertTuple(f, Row({0, 10000 + i}));
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  std::string base_before = ReadFile(path);
  storage::CheckpointInfo idle = db.Checkpoint(path);
  EXPECT_EQ(idle.kind, storage::CheckpointInfo::kNoop);
  EXPECT_EQ(ReadFile(path), base_before);  // base untouched
  EXPECT_EQ(CountDeltas(path), 1);
  // The next *real* change still folds as designed.
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({1, 99999}));
  }));
  EXPECT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  EXPECT_EQ(CountDeltas(path), 0);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, DictRegistryAndRelationGrowthRideTheDelta) {
  // New strings (out of rank order), big integers, registry names and a
  // re-published relation all land in the delta and replay at open.
  std::string path = TempPath("ckpt_dict.fdbs");
  Database db;
  AttrId a = db.Attr("ckg_a"), b = db.Attr("ckg_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < 2000; ++x) r.Add({Value(x / 100), Value(x)});
  db.AddView("U", FactoriseRelation(r, {a, b}));
  db.AddRelation("Flat", std::move(r));
  // Strings sorting before existing dictionary content force a non-
  // identity remap on replay.
  db.AddView("S", [&] {
    AttrId s = db.Attr("ckg_s");
    FTree t;
    t.AddNode({s}, -1);
    return Factorisation(t, {MakeLeaf({Value("mm ckpt")})});
  }());
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);

  int64_t big = (int64_t{1} << 52) + 99;
  ASSERT_TRUE(db.UpdateView("S", [&](Factorisation* f) {
    InsertTuple(f, {Value("aa ckpt")});   // new string, rank-shifting
    InsertTuple(f, {Value("zz ckpt")});   // new string, appending
  }));
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({7777, 1}));
  }));
  db.Attr("ckg_new_attr");  // registry growth
  {
    Relation r2{RelSchema({a, b})};
    r2.Add({Value(int64_t{1}), Value(big)});  // big int via the relation
    db.AddRelation("Flat", std::move(r2));    // re-published relation
  }
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);

  std::string mono = TempPath("ckpt_dict_mono.fdbs");
  db.Save(mono);
  Database via_delta = Database::Open(path);
  Database via_mono = Database::Open(mono);
  EXPECT_EQ(FlattenCsv(*via_delta.view("S"), via_delta.registry()),
            FlattenCsv(*via_mono.view("S"), via_mono.registry()));
  EXPECT_EQ(FlattenCsv(*via_delta.view("U"), via_delta.registry()),
            FlattenCsv(*via_mono.view("U"), via_mono.registry()));
  EXPECT_TRUE(via_delta.relation("Flat")->BagEquals(*db.relation("Flat")));
  EXPECT_TRUE(via_delta.registry().Find("ckg_new_attr").has_value());
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
  std::remove(mono.c_str());
}

TEST(StorageCheckpointTest, ChainOfDeltasThenFoldIntoFreshBase) {
  std::string path = TempPath("ckpt_chain.fdbs");
  // Big enough that a handful of tiny deltas stays under the byte fold
  // threshold (half the base) until the chain-length threshold trips.
  Database db = MakePathDb(20000, "ckc");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);

  int64_t next = 500000;
  bool folded = false;
  for (uint64_t i = 0; i <= storage::kMaxDeltaChain; ++i) {
    ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
      InsertTuple(f, Row({next, 1}));
      ++next;
    }));
    storage::CheckpointInfo info = db.Checkpoint(path);
    if (info.kind == storage::CheckpointInfo::kBase) {
      folded = true;
      // A fold removes the whole delta chain.
      EXPECT_EQ(CountDeltas(path), 0);
    }
    // Every intermediate state opens correctly.
    Database fresh = Database::Open(path);
    EXPECT_EQ(fresh.view("U")->CountTuples(),
              20000 + static_cast<int64_t>(i) + 1);
  }
  EXPECT_TRUE(folded);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, CompactedViewStillCheckpointsCorrectly) {
  // Compaction copies every live node to fresh addresses, invalidating
  // the retained index; the next delta must fall back to a full view
  // re-dump (detected via the arena rebuild generation) and stay correct.
  std::string path = TempPath("ckpt_compact.fdbs");
  Database db = MakePathDb(1000, "ckp");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({99991, 1}));
    f->Compact();
  }));
  storage::CheckpointInfo info = db.Checkpoint(path);
  EXPECT_EQ(info.kind, storage::CheckpointInfo::kDelta);
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 1001);
  EXPECT_TRUE(ContainsTuple(*fresh.view("U"), Row({99991, 1})));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
}

TEST(StorageCheckpointTest, RebaseByAnotherWriterForcesRebaseNotOrphanedDelta) {
  // A second writer (here: a Database copy, which deliberately does not
  // share checkpoint state) re-bases the path, removing the first
  // writer's deltas. The first writer's next checkpoint must notice the
  // epoch change on disk and rebase too — appending a delta stamped
  // with the dead epoch would report success while the changes were
  // silently unrecoverable at open.
  std::string path = TempPath("ckpt_twowriters.fdbs");
  Database a = MakePathDb(150, "ckw");
  ASSERT_EQ(a.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  ASSERT_TRUE(a.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({70001, 1}));
  }));
  ASSERT_EQ(a.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);

  Database b = a;          // fresh chain identity
  b.Checkpoint(path);      // re-bases: new epoch, a's delta removed
  EXPECT_EQ(CountDeltas(path), 0);

  ASSERT_TRUE(a.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({70002, 1}));
  }));
  storage::CheckpointInfo info = a.Checkpoint(path);
  EXPECT_EQ(info.kind, storage::CheckpointInfo::kBase);
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 152);
  EXPECT_TRUE(ContainsTuple(*fresh.view("U"), Row({70002, 1})));
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, PathAliasSpellingsShareOneChain) {
  // Save through an alias spelling of the checkpointed path must fold
  // the chain (same canonical file), not orphan it — otherwise the next
  // delta would be stamped with the dead base's epoch and its changes
  // silently lost at open.
  std::string path = TempPath("ckpt_alias.fdbs");
  std::string alias = ::testing::TempDir() + "/./ckpt_alias.fdbs";
  Database db = MakePathDb(120, "cka");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({60001, 1}));
  }));
  db.Save(alias);  // fold via the alias spelling
  EXPECT_EQ(CountDeltas(path), 0);
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({60002, 1}));
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 122);
  EXPECT_TRUE(ContainsTuple(*fresh.view("U"), Row({60002, 1})));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
}

TEST(StorageCheckpointTest, RepublishedFromScratchViewFallsBackToFullDump) {
  // AddView of a factorisation rebuilt from scratch (same f-tree, fresh
  // arenas that never adopted the persisted ones) invalidates the
  // retained node index: none of its nodes were persisted, and the old
  // nodes' addresses may be recycled. The checkpoint must detect the
  // broken arena chain and re-dump the view rather than emit an
  // incremental delta against dangling identities.
  std::string path = TempPath("ckpt_republish.fdbs");
  Database db = MakePathDb(400, "ckr");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);

  {
    AttrId a = *db.registry().Find("ckr_a"), b = *db.registry().Find("ckr_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < 430; ++x) r.Add({Value(x / 100), Value(x)});
    db.AddView("U", FactoriseRelation(r, {a, b}));  // from-scratch rebuild
  }
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  // Churn allocations so recycled addresses would surface if the index
  // had been kept, then checkpoint again. (The full re-dump above is
  // nearly base-sized, so this one may fold into a fresh base — both
  // outcomes must replay to the correct state.)
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    for (int64_t i = 0; i < 50; ++i) InsertTuple(f, Row({9, 100000 + i}));
  }));
  ASSERT_NE(db.Checkpoint(path).kind, storage::CheckpointInfo::kNoop);

  std::string mono = TempPath("ckpt_republish_mono.fdbs");
  db.Save(mono);
  Database via_delta = Database::Open(path);
  Database via_mono = Database::Open(mono);
  EXPECT_EQ(via_delta.view("U")->CountTuples(), 480);
  EXPECT_EQ(FlattenCsv(*via_delta.view("U"), via_delta.registry()),
            FlattenCsv(*via_mono.view("U"), via_mono.registry()));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
  std::remove(storage::DeltaPath(path, 2).c_str());
  std::remove(mono.c_str());
}

TEST(StorageCheckpointTest, StrayTmpNeverShadowsAndIsReplacedBySave) {
  // Simulates a crash between the temp write and the rename: the stray
  // *.tmp must never affect opens, and the next save must succeed and
  // leave no temp file behind.
  std::string path = TempPath("ckpt_tmp.fdbs");
  Database db = MakePathDb(60, "ckt");
  db.Save(path);
  WriteFile(path + ".tmp", "garbage from a crashed writer");
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 60);

  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({1000, 1}));
  }));
  db.Save(path);
  EXPECT_FALSE(Exists(path + ".tmp"));
  Database fresh2 = Database::Open(path);
  EXPECT_EQ(fresh2.view("U")->CountTuples(), 61);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, FailedSaveLeavesPriorSnapshotIntact) {
  std::string path = TempPath("ckpt_intact.fdbs");
  Database db = MakePathDb(40, "cki");
  db.Save(path);
  std::string before = ReadFile(path);
  // A save into an unwritable location throws without touching `path`.
  EXPECT_THROW(db.Save("/nonexistent-dir-fdb/x.fdbs"), std::invalid_argument);
  EXPECT_EQ(ReadFile(path), before);
  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 40);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, StaleDeltaFromAnOlderBaseIsIgnored) {
  // A crash between a fold's rename and its delta cleanup leaves deltas
  // of the *previous* base next to the new one. The epoch stamp makes
  // the reader skip them instead of misapplying.
  std::string path = TempPath("ckpt_stale.fdbs");
  Database db = MakePathDb(300, "cks");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({40001, 1}));
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  std::string old_delta = ReadFile(storage::DeltaPath(path, 1));

  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({40002, 1}));
  }));
  db.Save(path);  // fold: new epoch, deltas removed
  EXPECT_EQ(CountDeltas(path), 0);
  WriteFile(storage::DeltaPath(path, 1), old_delta);  // simulate leftover

  Database fresh = Database::Open(path);
  EXPECT_EQ(fresh.view("U")->CountTuples(), 302);
  EXPECT_TRUE(ContainsTuple(*fresh.view("U"), Row({40002, 1})));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
}

TEST(StorageCheckpointTest, CorruptDeltaIsRejected) {
  std::string path = TempPath("ckpt_corrupt.fdbs");
  Database db = MakePathDb(100, "ckx");
  db.Checkpoint(path);
  ASSERT_TRUE(db.UpdateView("U", [&](Factorisation* f) {
    InsertTuple(f, Row({50000, 1}));
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  std::string dp = storage::DeltaPath(path, 1);
  std::string bytes = ReadFile(dp);
  WriteFile(dp, bytes.substr(0, bytes.size() / 2));  // truncate
  EXPECT_THROW(Database::Open(path), std::invalid_argument);
  std::remove(path.c_str());
  std::remove(dp.c_str());
}

TEST(StorageCheckpointTest, DagBigIntAndRemapCasesSurviveDeltaChains) {
  // The storage_snapshot_test trio (DAG sharing, big ints, dictionary
  // remap) through a base + two deltas instead of one monolithic file.
  std::string path = TempPath("ckpt_mixed.fdbs");
  ValueDict::Default().Encode(Value("zz ckpt-remap"));
  ValueDict::Default().Encode(Value("aa ckpt-remap"));
  Database db;
  // Ballast so the tiny deltas below stay under the byte-fold threshold
  // (half the base size).
  {
    AttrId p = db.Attr("ckm_p"), q = db.Attr("ckm_q");
    Relation ballast{RelSchema({p, q})};
    for (int64_t x = 0; x < 2000; ++x) ballast.Add({Value(x), Value(x)});
    db.AddRelation("Ballast", std::move(ballast));
  }
  // DAG-shared view, untouched across the chain.
  {
    AttrId a = db.Attr("ckm_a"), b = db.Attr("ckm_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x : {1, 2, 3, 4}) {
      for (int64_t y : {10, 20, 30}) r.Add({Value(x), Value(y)});
    }
    Factorisation f = FactoriseRelation(r, {a, b});
    CompressInPlace(&f);
    db.AddView("Dag", std::move(f));
  }
  // Mixed-type path view that the deltas will grow.
  AttrId m = db.Attr("ckm_m");
  {
    FTree t;
    t.AddNode({m}, -1);
    db.AddView("Mix",
               Factorisation(t, {MakeLeaf({Value(int64_t{-5}),
                                           Value("mm ckpt-remap")})}));
  }
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);

  int64_t big = (int64_t{1} << 51) + 13;
  ASSERT_TRUE(db.UpdateView("Mix", [&](Factorisation* f) {
    InsertTuple(f, {Value(big)});
    InsertTuple(f, {Value("aa ckpt-remap")});
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  ASSERT_TRUE(db.UpdateView("Mix", [&](Factorisation* f) {
    InsertTuple(f, {Value(2.5)});
    InsertTuple(f, {Value("zz ckpt-remap")});
  }));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  ASSERT_EQ(CountDeltas(path), 2);

  std::string mono = TempPath("ckpt_mixed_mono.fdbs");
  db.Save(mono);
  Database via_delta = Database::Open(path);
  Database via_mono = Database::Open(mono);
  for (const char* v : {"Dag", "Mix"}) {
    ASSERT_NE(via_delta.view(v), nullptr) << v;
    EXPECT_EQ(FlattenCsv(*via_delta.view(v), via_delta.registry()),
              FlattenCsv(*via_mono.view(v), via_mono.registry()))
        << v;
  }
  // DAG sharing preserved through the chain.
  EXPECT_EQ(via_delta.view("Dag")->roots()[0]->child(0, 1, 0),
            via_delta.view("Dag")->roots()[0]->child(1, 1, 0));
  std::remove(path.c_str());
  std::remove(storage::DeltaPath(path, 1).c_str());
  std::remove(storage::DeltaPath(path, 2).c_str());
  std::remove(mono.c_str());
}

TEST(StorageCheckpointTest, LegacyVersion1SnapshotStillOpens) {
  Database db = MakePathDb(80, "ckv");
  std::string bytes = storage::SerialiseDatabase(db, /*version=*/1);
  // The header says version 1 and the reader accepts it.
  uint32_t version;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  EXPECT_EQ(version, 1u);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  EXPECT_EQ(fresh.view("U")->CountTuples(), 80);
  EXPECT_EQ(FlattenCsv(*fresh.view("U"), fresh.registry()),
            FlattenCsv(*db.view("U"), db.registry()));
  // Via a file, too (Database::Open tolerates version-1 bases and simply
  // finds no meta/epoch, so any delta would be treated as stale).
  std::string path = TempPath("ckpt_v1.fdbs");
  WriteFile(path, bytes);
  Database from_file = Database::Open(path);
  EXPECT_EQ(from_file.view("U")->CountTuples(), 80);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, StreamedSaveMatchesBufferSerialisation) {
  // The file and buffer writers share one streaming code path; their
  // output must agree byte for byte apart from the random epoch stamp.
  std::string path = TempPath("ckpt_stream.fdbs");
  Database db = MakePathDb(500, "ckb");
  db.Save(path);
  std::string streamed = ReadFile(path);
  std::string buffered = storage::SerialiseDatabase(db);
  ASSERT_EQ(streamed.size(), buffered.size());
  // Zero both epoch payloads (the meta section) before comparing — and
  // the meta entry's crc32, which covers the differing epoch bytes.
  auto zero_meta = [](std::string* bytes) {
    storage::FileHeader header;
    std::memcpy(&header, bytes->data(), sizeof(header));
    for (uint64_t s = 0; s < header.section_count; ++s) {
      char* entry_at =
          bytes->data() + sizeof(header) + s * sizeof(storage::SectionEntry);
      storage::SectionEntry e;
      std::memcpy(&e, entry_at, sizeof(e));
      if (e.kind == storage::kSectionMeta) {
        std::memset(bytes->data() + e.offset, 0, e.size);
        e.crc32 = 0;
        std::memcpy(entry_at, &e, sizeof(e));
      }
    }
  };
  zero_meta(&streamed);
  zero_meta(&buffered);
  EXPECT_EQ(streamed, buffered);
  std::remove(path.c_str());
}

TEST(StorageCheckpointTest, SavePeakTransientIsWellBelowFileSize) {
  // The pre-streaming writer buffered the whole file (and the segment
  // arrays besides): peak ~3x file size. The streaming writer's peak is
  // its node bookkeeping plus a fixed write buffer.
  Database db;
  InstallWorkload(&db, SmallParams(8), "R1");
  std::string path = TempPath("ckpt_peak.fdbs");
  storage::SaveStats stats;
  storage::SaveSnapshot(db, path, &stats);
  EXPECT_GT(stats.bytes_written, uint64_t{256} << 10);
  EXPECT_LT(stats.peak_transient_bytes, stats.bytes_written);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdb
