#include "fdb/obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// A small updatable database with one view "V".
Database MakeDb(int64_t rows, const std::string& prefix) {
  Database db;
  AttrId a = db.Attr(prefix + "_a"), b = db.Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x / 10), Value(x)});
  db.AddView("V", FactoriseRelation(r, {a, b}));
  return db;
}

size_t CountEvents(const std::vector<obs::Event>& events, obs::EventType t) {
  size_t n = 0;
  for (const obs::Event& e : events) {
    if (e.type == t) ++n;
  }
  return n;
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetLogEnabled(true);
    obs::EventLog::Instance().Clear();
  }
  void TearDown() override {
    obs::EventLog::Instance().SetSinkPath("");
    obs::EventLog::Instance().Clear();
    obs::SetLogEnabled(false);
  }
};

TEST_F(LogTest, DisabledEmitIsANoOp) {
  obs::SetLogEnabled(false);
  obs::EventLog& log = obs::EventLog::Instance();
  uint64_t before = log.total_emitted();
  log.Emit(obs::EventType::kSave, {obs::F("path", "/x")});
  EXPECT_EQ(log.total_emitted(), before);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST_F(LogTest, SequenceIsDenseAndRingBounded) {
  obs::EventLog& log = obs::EventLog::Instance();
  uint64_t dropped_before = log.dropped();
  constexpr size_t kOver = 100;
  for (size_t i = 0; i < obs::EventLog::kRingCapacity + kOver; ++i) {
    log.Emit(obs::EventType::kSave,
             {obs::F("i", static_cast<int64_t>(i))});
  }
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), obs::EventLog::kRingCapacity);
  EXPECT_EQ(log.dropped() - dropped_before, kOver);
  // Dense, ascending seq: drops are detectable from gaps at the front.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_GE(log.total_emitted(),
            obs::EventLog::kRingCapacity + kOver);
}

TEST_F(LogTest, JsonlSinkAppendsOneObjectPerEvent) {
  std::string path = TempPath("events.jsonl");
  std::remove(path.c_str());
  obs::EventLog& log = obs::EventLog::Instance();
  log.SetSinkPath(path);
  log.Emit(obs::EventType::kCheckpoint,
           {obs::F("path", "a\"b"), obs::F("bytes", int64_t{42})});
  log.Emit(obs::EventType::kWalStall, {obs::F("stall_ms", 7.5)});
  log.SetSinkPath("");  // closes (and flushes) the sink

  std::string text = ReadFile(path);
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> got;
  while (std::getline(lines, line)) got.push_back(line);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].front(), '{');
  EXPECT_EQ(got[0].back(), '}');
  EXPECT_NE(got[0].find("\"type\":\"checkpoint\""), std::string::npos);
  EXPECT_NE(got[0].find("\"path\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(got[0].find("\"bytes\":42"), std::string::npos);
  EXPECT_NE(got[1].find("\"type\":\"wal_stall\""), std::string::npos);
  EXPECT_NE(got[1].find("\"stall_ms\":"), std::string::npos);
}

TEST_F(LogTest, SaveCheckpointAndRecoveryEvents) {
  std::string path = TempPath("log_events.fdbs");
  obs::EventLog& log = obs::EventLog::Instance();

  Database db = MakeDb(50, "le");
  db.Save(path);
  {
    std::vector<obs::Event> events = log.Snapshot();
    ASSERT_EQ(CountEvents(events, obs::EventType::kSave), 1u);
    const obs::Event& e = events.back();
    // Save canonicalises the path (symlinks resolved), so match on the
    // file name, not the raw temp path.
    EXPECT_NE(e.DetailString().find("log_events.fdbs"), std::string::npos)
        << e.DetailString();
    EXPECT_NE(e.DetailString().find("bytes="), std::string::npos);
    EXPECT_GT(e.wall_us, 0);
  }

  // First checkpoint writes a base, the second (after a change) a delta,
  // a third with no changes is a noop — all three emit typed events.
  std::string ckpt = TempPath("log_events_ckpt.fdbs");
  db.Checkpoint(ckpt);
  db.Insert("V", Row({100, 1000}));
  db.Checkpoint(ckpt);
  db.Checkpoint(ckpt);
  {
    std::vector<obs::Event> events = log.Snapshot();
    EXPECT_EQ(CountEvents(events, obs::EventType::kCheckpoint), 3u);
    std::string all;
    for (const obs::Event& e : events) {
      if (e.type == obs::EventType::kCheckpoint) {
        all += e.DetailString() + "\n";
      }
    }
    EXPECT_NE(all.find("kind=base"), std::string::npos);
    EXPECT_NE(all.find("kind=delta"), std::string::npos);
    EXPECT_NE(all.find("kind=noop"), std::string::npos);
  }

  log.Clear();
  Database re = Database::Open(ckpt);
  {
    std::vector<obs::Event> events = log.Snapshot();
    ASSERT_EQ(CountEvents(events, obs::EventType::kRecovery), 1u);
    std::string detail = events.back().DetailString();
    EXPECT_NE(detail.find("deltas_replayed=1"), std::string::npos)
        << detail;
  }
}

TEST_F(LogTest, WalRecoveryAndStallEvents) {
  std::string path = TempPath("log_wal.fdbs");
  obs::EventLog& log = obs::EventLog::Instance();
  int64_t saved = log.wal_stall_ns();
  log.set_wal_stall_ns(0);  // every commit group "stalls"

  {
    Database db = MakeDb(30, "lw");
    db.EnableWal(path);
    db.Insert("V", Row({200, 2000}));
    std::vector<obs::Event> events = log.Snapshot();
    ASSERT_GE(CountEvents(events, obs::EventType::kWalStall), 1u);
    std::string detail = events.back().DetailString();
    EXPECT_NE(detail.find("ops=1"), std::string::npos) << detail;
    EXPECT_NE(detail.find("stall_ms="), std::string::npos) << detail;
  }
  log.set_wal_stall_ns(saved);

  log.Clear();
  Database re = Database::Open(path);
  std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(CountEvents(events, obs::EventType::kRecovery), 1u);
  std::string detail = events.back().DetailString();
  EXPECT_NE(detail.find("wal_groups_replayed=1"), std::string::npos)
      << detail;
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({200, 2000})));
}

TEST_F(LogTest, ThresholdsAreSettable) {
  obs::EventLog& log = obs::EventLog::Instance();
  int64_t slow = log.slow_query_ns();
  int64_t stall = log.wal_stall_ns();
  log.set_slow_query_ns(123);
  log.set_wal_stall_ns(456);
  EXPECT_EQ(log.slow_query_ns(), 123);
  EXPECT_EQ(log.wal_stall_ns(), 456);
  log.set_slow_query_ns(slow);
  log.set_wal_stall_ns(stall);
}

TEST_F(LogTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kSlowQuery), "slow_query");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kRecovery), "recovery");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kSave), "save");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kCheckpoint),
               "checkpoint");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kWalStall), "wal_stall");
  EXPECT_STREQ(obs::EventTypeName(obs::EventType::kPoolSaturation),
               "pool_saturation");
}

}  // namespace
}  // namespace fdb
