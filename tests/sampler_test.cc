#include "fdb/obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fdb/core/build.h"
#include "fdb/engine/database.h"
#include "fdb/obs/metrics.h"

namespace fdb {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override { obs::SetMetricsEnabled(false); }
};

TEST_F(SamplerTest, SampleOnceIsDeterministic) {
  obs::Counter& c =
      obs::Registry::Instance().GetCounter("sampler_test.counter");
  c.Reset();
  obs::MetricsSampler::Options opts;
  opts.metrics = {"sampler_test.counter"};
  obs::MetricsSampler sampler(opts);
  EXPECT_FALSE(sampler.running());

  c.Inc(3);
  sampler.SampleOnce();
  c.Inc(4);
  sampler.SampleOnce();
  EXPECT_EQ(sampler.ticks(), 2u);

  auto history = sampler.History();
  ASSERT_EQ(history.size(), 1u);  // the filter kept only one metric
  const std::vector<obs::MetricsSampler::Point>& pts =
      history["sampler_test.counter"];
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].tick, 1u);
  EXPECT_EQ(pts[1].tick, 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 3.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 7.0);
  EXPECT_FALSE(pts[0].is_hist);
  EXPECT_GE(pts[1].ts_ns, pts[0].ts_ns);

  std::vector<obs::MetricsSampler::Window> windows = sampler.Windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].metric, "sampler_test.counter");
  EXPECT_EQ(windows[0].points, 2u);
  EXPECT_DOUBLE_EQ(windows[0].first_value, 3.0);
  EXPECT_DOUBLE_EQ(windows[0].last_value, 7.0);
}

TEST_F(SamplerTest, HistogramPointsCarryPercentiles) {
  obs::Histogram& h =
      obs::Registry::Instance().GetHistogram("sampler_test.hist", "ns");
  h.Reset();
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  obs::MetricsSampler::Options opts;
  opts.metrics = {"sampler_test.hist"};
  obs::MetricsSampler sampler(opts);
  sampler.SampleOnce();

  auto history = sampler.History();
  const std::vector<obs::MetricsSampler::Point>& pts =
      history["sampler_test.hist"];
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_TRUE(pts[0].is_hist);
  EXPECT_EQ(pts[0].hist_count, 100u);
  EXPECT_DOUBLE_EQ(pts[0].value, 5050.0);  // merged sum
  EXPECT_GT(pts[0].p50, 0.0);
  EXPECT_GE(pts[0].p99, pts[0].p50);
}

TEST_F(SamplerTest, RingCapacityBoundsHistory) {
  obs::Registry::Instance().GetCounter("sampler_test.ring");
  obs::MetricsSampler::Options opts;
  opts.capacity = 3;
  opts.metrics = {"sampler_test.ring"};
  obs::MetricsSampler sampler(opts);
  for (int i = 0; i < 10; ++i) sampler.SampleOnce();
  auto history = sampler.History();
  ASSERT_EQ(history["sampler_test.ring"].size(), 3u);
  // The ring keeps the newest points.
  EXPECT_EQ(history["sampler_test.ring"].back().tick, 10u);
}

TEST_F(SamplerTest, BackgroundThreadTicksAndStops) {
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 1;
  opts.metrics = {"sampler_test.counter"};
  obs::MetricsSampler sampler(opts);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent

  // Wait for a few background ticks (bounded, not flaky: 1ms period).
  for (int spin = 0; spin < 2000 && sampler.ticks() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sampler.ticks(), 3u);

  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent
  uint64_t frozen = sampler.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(sampler.ticks(), frozen) << "ticks after Stop";

  // Restartable after Stop.
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
}

TEST_F(SamplerTest, DatabaseOwnsSamplerLifecycle) {
  Database db;
  EXPECT_EQ(db.metrics_sampler(), nullptr);
  db.StartMetricsSampler(/*interval_ms=*/1);
  std::shared_ptr<obs::MetricsSampler> s = db.metrics_sampler();
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->running());
  EXPECT_EQ(s->options().interval_ms, 1);

  // Restart replaces (and stops) the previous sampler.
  db.StartMetricsSampler(/*interval_ms=*/2);
  EXPECT_FALSE(s->running());
  EXPECT_NE(db.metrics_sampler(), s);

  db.StopMetricsSampler();
  EXPECT_EQ(db.metrics_sampler(), nullptr);
}

TEST_F(SamplerTest, DatabaseDestructionJoinsSamplerThread) {
  // The sampler must not outlive its database: destruction stops and
  // joins the background thread (ASan/TSan would flag a leak or a race).
  {
    Database db;
    db.StartMetricsSampler(/*interval_ms=*/1);
    ASSERT_NE(db.metrics_sampler(), nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  // Move transfers the running sampler to the destination.
  {
    Database a;
    a.StartMetricsSampler(/*interval_ms=*/1);
    Database b = std::move(a);
    ASSERT_NE(b.metrics_sampler(), nullptr);
    EXPECT_TRUE(b.metrics_sampler()->running());
  }
}

TEST_F(SamplerTest, TicksCounterRegistered) {
  obs::MetricsSampler sampler;
  uint64_t before =
      obs::Registry::Instance().GetCounter("sampler.ticks").Value();
  sampler.SampleOnce();
  EXPECT_EQ(obs::Registry::Instance().GetCounter("sampler.ticks").Value(),
            before + 1);
}

}  // namespace
}  // namespace fdb
