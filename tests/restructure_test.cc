#include "fdb/core/ops/restructure.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/ops/aggregate.h"
#include "fdb/optimizer/fplan.h"
#include "fdb/relational/rdb_ops.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameSet;

TEST(RewriteAtNodeTest, RewritesEveryInstance) {
  // Drop every other value from the price unions via a custom rewriter.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  int count = 0;
  FactArena& arena = f.ArenaForWrite();
  RewriteInFactorisation(&f, p.n_price, [&](const FactNode& n) {
    ++count;
    FactBuilder out;
    out.values.assign(n.values.begin(), n.values.end());
    return out.Finish(arena);
  });
  EXPECT_EQ(count, 7);  // one price union per item occurrence
  EXPECT_TRUE(f.Validate());
}

TEST(RewriteAtNodeTest, EmptyRewritePrunesUpwards) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  // Emptying every item union kills all branches: the relation is empty.
  RewriteInFactorisation(&f, p.n_item, [&](const FactNode&) {
    return FactArena::EmptyNode();
  });
  EXPECT_TRUE(f.empty());
}

TEST(RewriteAtNodeTest, PartialPruneKeepsSiblings) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  // Remove the value "Friday" from date unions; pizzas whose only date was
  // Friday would vanish (none here: Hawaii has only Friday!).
  FactArena& arena = f.ArenaForWrite();
  ValueRef friday = f.dict().Encode(Value("Friday"));
  RewriteInFactorisation(&f, p.n_date, [&](const FactNode& n) {
    FactBuilder out;
    int k = 1;  // date has one child (customer)
    for (int i = 0; i < n.size(); ++i) {
      if (n.values[i] == friday) continue;
      out.values.push_back(n.values[i]);
      out.children.push_back(n.child(i, k, 0));
    }
    return out.Finish(arena);
  });
  EXPECT_TRUE(f.Validate());
  // Hawaii had only Friday orders: it must be pruned entirely.
  EXPECT_EQ(f.roots()[0]->size(), 2);
  // Capricciosa keeps Monday×Mario over 3 items; Margherita keeps 1 tuple.
  EXPECT_EQ(f.CountTuples(), 4);
}

TEST(RemoveLeafTest, DropsColumnKeepsDistinctRows) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplyRemoveLeaf(&f, p.n_price);
  EXPECT_TRUE(f.Validate());
  EXPECT_FALSE(f.tree().node(p.n_price).alive);
  Relation expect = Project(
      NaturalJoinAll({p.db->relation("Orders"), p.db->relation("Pizzas"),
                      p.db->relation("Items")}),
      {p.attr("pizza"), p.attr("date"), p.attr("customer"), p.attr("item")},
      /*dedup=*/true);
  EXPECT_TRUE(SameSet(f.Flatten(), expect, expect.schema().attrs(),
                      p.db->registry()));
}

TEST(RemoveLeafTest, RemoveRootLeafDropsWholeTree) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("rla"), b = reg.Intern("rlb");
  FTree t;
  t.AddNode({a}, -1);
  int nb = t.AddNode({b}, -1);
  Factorisation f(t, {MakeLeaf({Value(1), Value(2)}),
                      MakeLeaf({Value(7)})});
  ApplyRemoveLeaf(&f, nb);
  EXPECT_TRUE(f.Validate());
  EXPECT_EQ(f.roots().size(), 1u);
  EXPECT_EQ(f.CountTuples(), 2);
}

TEST(RemoveLeafTest, NonLeafThrows) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  EXPECT_THROW(ApplyRemoveLeaf(&f, p.n_item), std::invalid_argument);
}

TEST(RenameTest, RenamesAggregateOutput) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  std::vector<int> ids = ApplyAggregate(
      &f, &p.db->registry(), p.n_item, {{AggFn::kSum, p.attr("price")}});
  ApplyRename(&f, &p.db->registry(), ids[0], "pizza_price");
  AttrId renamed = *p.db->registry().Find("pizza_price");
  EXPECT_EQ(f.tree().NodeOfAttr(renamed), ids[0]);
  EXPECT_TRUE(f.OutputSchema().Contains(renamed));
}

TEST(FPlanTest, ExecutePlanRunsSequence) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  FPlan plan = {
      FOp::Select(p.n_price, CmpOp::kGt, Value(1)),
      FOp::Aggregate(p.n_item, {{AggFn::kSum, p.attr("price")}}),
      FOp::Swap(p.n_date),
  };
  std::vector<FOpStats> stats;
  ExecutePlan(&f, &p.db->registry(), plan, &stats);
  EXPECT_TRUE(f.Validate());
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].kind, FOpKind::kSelectConst);
  EXPECT_GT(stats[2].singletons_after, 0);
}

TEST(FPlanTest, PlanToStringMentionsEveryOperator) {
  Pizzeria p = MakePizzeria();
  FPlan plan = {
      FOp::Swap(1),
      FOp::Merge(1, 2),
      FOp::Absorb(0, 2),
      FOp::Select(4, CmpOp::kGe, Value(3)),
      FOp::Aggregate(3, {{AggFn::kSum, p.attr("price")}}),
      FOp::Rename(3, "total"),
  };
  std::string s = PlanToString(plan, p.db->registry());
  for (const char* token : {"swap", "merge", "absorb", "select",
                            "aggregate", "sum_price", "rename", "total"}) {
    EXPECT_NE(s.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace fdb
