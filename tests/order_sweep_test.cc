// Exhaustive sweep over all 120 permutations of T1's five attributes:
// every permutation must be realisable as an enumeration order — directly
// when Theorem 2 already holds, otherwise after the partial restructuring
// plan — and the output must be lexicographically sorted accordingly.
// This is the property behind Example 2 and Experiment 4.

#include <gtest/gtest.h>

#include <algorithm>

#include "fdb/core/enumerate.h"
#include "fdb/core/order.h"
#include "fdb/core/ops/swap.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

class OrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(OrderSweep, EveryPermutationRealisable) {
  Pizzeria p = MakePizzeria();
  std::vector<std::string> names = {"pizza", "date", "customer", "item",
                                    "price"};
  std::sort(names.begin(), names.end());
  for (int i = 0; i < GetParam(); ++i) {
    ASSERT_TRUE(std::next_permutation(names.begin(), names.end()));
  }

  Factorisation f = p.view();
  std::vector<AttrId> attrs;
  std::vector<int> o_nodes;
  for (const std::string& n : names) {
    attrs.push_back(p.attr(n));
    o_nodes.push_back(f.tree().NodeOfAttr(p.attr(n)));
  }

  bool supported = SupportsOrder(f.tree(), o_nodes);
  std::vector<int> plan = PlanRestructure(f.tree(), o_nodes, {});
  if (supported) {
    EXPECT_TRUE(plan.empty())
        << "supported order must need no restructuring";
  } else {
    EXPECT_FALSE(plan.empty());
  }
  for (int b : plan) ApplySwap(&f, b);
  ASSERT_TRUE(f.Validate());
  ASSERT_TRUE(f.tree().SatisfiesPathConstraint());

  // Re-resolve nodes (ids are stable, but keep it uniform) and enumerate.
  o_nodes.clear();
  for (AttrId a : attrs) o_nodes.push_back(f.tree().NodeOfAttr(a));
  ASSERT_TRUE(SupportsOrder(f.tree(), o_nodes));

  // Alternate sort directions to also exercise descending iteration.
  std::vector<int> visit = OrderedVisitSequence(f.tree(), o_nodes);
  std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
  std::vector<SortKey> keys;
  for (size_t i = 0; i < attrs.size(); ++i) {
    SortDir d = i % 2 == 0 ? SortDir::kAsc : SortDir::kDesc;
    dirs[i] = d;
    keys.push_back({attrs[i], d});
  }
  Relation r = EnumerateToRelation(f, visit, dirs);
  EXPECT_EQ(r.size(), 13);
  EXPECT_TRUE(r.IsSortedBy(keys)) << "order: " << names[0] << "," << names[1]
                                  << "," << names[2] << ",...";
}

INSTANTIATE_TEST_SUITE_P(AllPermutations, OrderSweep,
                         ::testing::Range(0, 120));

// Grouping sweep: every subset of T1's attributes is realisable as a
// grouping set after restructuring, and the group enumeration yields
// exactly the distinct combinations (Theorem 1 / Example 10).
class GroupingSweep : public ::testing::TestWithParam<int> {};

TEST_P(GroupingSweep, EverySubsetRealisable) {
  int mask = GetParam();
  if (mask == 0) GTEST_SKIP() << "empty grouping set";
  Pizzeria p = MakePizzeria();
  std::vector<std::string> names = {"pizza", "date", "customer", "item",
                                    "price"};
  Factorisation f = p.view();
  std::vector<AttrId> attrs;
  std::vector<int> g_nodes;
  for (int i = 0; i < 5; ++i) {
    if (mask & (1 << i)) {
      attrs.push_back(p.attr(names[i]));
      g_nodes.push_back(f.tree().NodeOfAttr(p.attr(names[i])));
    }
  }
  for (int b : PlanRestructure(f.tree(), {}, g_nodes)) ApplySwap(&f, b);
  g_nodes.clear();
  for (AttrId a : attrs) g_nodes.push_back(f.tree().NodeOfAttr(a));
  ASSERT_TRUE(SupportsGrouping(f.tree(), g_nodes));

  // Enumerate the groups with a count per group; totals must add to 13.
  AttrId out = p.db->registry().Intern("gs_cnt" + std::to_string(mask));
  std::vector<int> visit;
  for (int n : f.tree().TopologicalOrder()) {
    if (std::find(g_nodes.begin(), g_nodes.end(), n) != g_nodes.end()) {
      visit.push_back(n);
    }
  }
  GroupAggEnumerator e(f, visit,
                       std::vector<SortDir>(visit.size(), SortDir::kAsc),
                       {{AggFn::kCount, kInvalidAttr}}, {out});
  int64_t total = 0;
  int64_t groups = 0;
  Tuple row(e.schema().arity());
  while (e.Next()) {
    e.Fill(&row);
    total += row.back().as_int();
    ++groups;
  }
  EXPECT_EQ(total, 13) << "per-group counts must partition the relation";
  EXPECT_GT(groups, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, GroupingSweep, ::testing::Range(0, 32));

}  // namespace
}  // namespace fdb
