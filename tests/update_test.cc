#include "fdb/core/update.h"

#include <gtest/gtest.h>

#include <random>

#include "fdb/core/build.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;
using testing::SameSet;

class UpdateTest : public ::testing::Test {
 protected:
  UpdateTest() {
    a_ = reg_.Intern("ua");
    b_ = reg_.Intern("ub");
    c_ = reg_.Intern("uc");
    base_ = Relation{RelSchema({a_, b_, c_})};
    base_.Add(Row({1, 10, 100}));
    base_.Add(Row({1, 20, 100}));
    base_.Add(Row({2, 10, 200}));
    view_ = FactoriseRelation(base_, {a_, b_, c_});
  }

  AttributeRegistry reg_;
  AttrId a_, b_, c_;
  Relation base_;
  Factorisation view_;
};

TEST_F(UpdateTest, ContainsTuple) {
  EXPECT_TRUE(ContainsTuple(view_, Row({1, 10, 100})));
  EXPECT_TRUE(ContainsTuple(view_, Row({2, 10, 200})));
  EXPECT_FALSE(ContainsTuple(view_, Row({1, 10, 200})));
  EXPECT_FALSE(ContainsTuple(view_, Row({3, 10, 100})));
}

TEST_F(UpdateTest, InsertNewBranch) {
  InsertTuple(&view_, Row({3, 30, 300}));
  EXPECT_TRUE(view_.Validate());
  EXPECT_TRUE(ContainsTuple(view_, Row({3, 30, 300})));
  EXPECT_EQ(view_.CountTuples(), 4);
  base_.Add(Row({3, 30, 300}));
  EXPECT_TRUE(SameSet(view_.Flatten(), base_, {a_, b_, c_}, reg_));
}

TEST_F(UpdateTest, InsertIntoExistingPrefix) {
  InsertTuple(&view_, Row({1, 10, 999}));
  EXPECT_TRUE(view_.Validate());
  EXPECT_EQ(view_.CountTuples(), 4);
  // The prefix is reused: still one union entry for a=1, b=10.
  EXPECT_EQ(view_.roots()[0]->size(), 2);
}

TEST_F(UpdateTest, InsertIsIdempotent) {
  InsertTuple(&view_, Row({1, 10, 100}));
  EXPECT_TRUE(view_.Validate());
  EXPECT_EQ(view_.CountTuples(), 3);
}

TEST_F(UpdateTest, InsertIntoEmptyView) {
  Relation empty{RelSchema({a_, b_, c_})};
  Factorisation v = FactoriseRelation(empty, {a_, b_, c_});
  ASSERT_TRUE(v.empty());
  InsertTuple(&v, Row({5, 50, 500}));
  EXPECT_FALSE(v.empty());
  EXPECT_TRUE(v.Validate());
  EXPECT_EQ(v.CountTuples(), 1);
}

TEST_F(UpdateTest, InsertSharesUntouchedBranches) {
  const FactNode* before = view_.roots()[0]->child(1, 1, 0);  // a=2
  InsertTuple(&view_, Row({1, 30, 300}));
  const FactNode* after = view_.roots()[0]->child(1, 1, 0);
  EXPECT_EQ(before, after) << "untouched branch was copied";
}

TEST_F(UpdateTest, DeleteLeafValue) {
  EXPECT_TRUE(DeleteTuple(&view_, Row({1, 10, 100})));
  EXPECT_TRUE(view_.Validate());
  EXPECT_FALSE(ContainsTuple(view_, Row({1, 10, 100})));
  EXPECT_EQ(view_.CountTuples(), 2);
}

TEST_F(UpdateTest, DeletePrunesEmptiedBranches) {
  // Removing the only tuple under a=2 must prune the whole branch.
  EXPECT_TRUE(DeleteTuple(&view_, Row({2, 10, 200})));
  EXPECT_TRUE(view_.Validate());
  EXPECT_EQ(view_.roots()[0]->size(), 1);  // only a=1 left
}

TEST_F(UpdateTest, DeleteAbsentTupleReturnsFalse) {
  EXPECT_FALSE(DeleteTuple(&view_, Row({9, 9, 9})));
  EXPECT_EQ(view_.CountTuples(), 3);
}

TEST_F(UpdateTest, DeleteToEmptyAndReinsert) {
  EXPECT_TRUE(DeleteTuple(&view_, Row({1, 10, 100})));
  EXPECT_TRUE(DeleteTuple(&view_, Row({1, 20, 100})));
  EXPECT_TRUE(DeleteTuple(&view_, Row({2, 10, 200})));
  EXPECT_TRUE(view_.empty());
  InsertTuple(&view_, Row({7, 70, 700}));
  EXPECT_EQ(view_.CountTuples(), 1);
}

TEST_F(UpdateTest, WrongArityThrows) {
  EXPECT_THROW(InsertTuple(&view_, Row({1, 2})), std::invalid_argument);
  EXPECT_THROW(ContainsTuple(view_, Row({1})), std::invalid_argument);
}

TEST_F(UpdateTest, NonPathViewThrows) {
  // A branching tree (two children) is rejected.
  FTree t;
  int root = t.AddNode({a_}, -1);
  t.AddNode({b_}, root);
  t.AddNode({c_}, root);
  Factorisation f(
      t, {MakeNode({Value(1)}, {MakeLeaf({Value(2)}), MakeLeaf({Value(3)})})});
  EXPECT_THROW(InsertTuple(&f, Row({1, 2, 3})), std::invalid_argument);
}

// Property: a random interleaving of inserts and deletes keeps the view
// equal to a std::set-maintained oracle.
class UpdateProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpdateProperty, RandomInsertDeleteMatchesOracle) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("upa" + std::to_string(GetParam()));
  AttrId b = reg.Intern("upb" + std::to_string(GetParam()));
  Relation empty{RelSchema({a, b})};
  Factorisation view = FactoriseRelation(empty, {a, b});
  std::set<std::pair<int64_t, int64_t>> oracle;

  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 77);
  for (int step = 0; step < 120; ++step) {
    int64_t x = static_cast<int64_t>(rng() % 5);
    int64_t y = static_cast<int64_t>(rng() % 5);
    if (rng() % 2 == 0) {
      InsertTuple(&view, Row({x, y}));
      oracle.emplace(x, y);
    } else {
      bool removed = DeleteTuple(&view, Row({x, y}));
      EXPECT_EQ(removed, oracle.erase({x, y}) > 0) << "step " << step;
    }
    ASSERT_TRUE(view.Validate()) << "step " << step;
    ASSERT_EQ(view.CountTuples(), static_cast<int64_t>(oracle.size()));
  }
  Relation expect{RelSchema({a, b})};
  for (const auto& [x, y] : oracle) expect.Add(Row({x, y}));
  if (!oracle.empty()) {
    EXPECT_TRUE(SameSet(view.Flatten(), expect, {a, b}, reg));
  } else {
    EXPECT_TRUE(view.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateProperty, ::testing::Range(0, 8));

// --- ApplyBatch: one sorted merge must equal op-by-op application. ---

TEST_F(UpdateTest, ApplyBatchMatchesSequentialApplication) {
  std::vector<BatchOp> ops = {
      {true, Row({3, 30, 300})},  {true, Row({1, 10, 101})},
      {false, Row({2, 10, 200})}, {true, Row({1, 20, 150})},
      {false, Row({9, 9, 9})},  // delete of absent tuple: no-op
  };
  Factorisation seq = view_;
  for (const BatchOp& op : ops) {
    if (op.insert) {
      InsertTuple(&seq, op.tuple);
    } else {
      DeleteTuple(&seq, op.tuple);
    }
  }
  ApplyBatch(&view_, ops);
  ASSERT_TRUE(view_.Validate());
  EXPECT_EQ(view_.CountTuples(), seq.CountTuples());
  EXPECT_TRUE(SameSet(view_.Flatten(), seq.Flatten(), {a_, b_, c_}, reg_));
}

TEST_F(UpdateTest, ApplyBatchLastOpWinsPerKey) {
  // insert then delete of the same tuple cancels; delete then re-insert
  // keeps it. Net membership is decided by the final op per key.
  ApplyBatch(&view_, {{true, Row({7, 70, 700})},
                      {false, Row({7, 70, 700})},
                      {false, Row({1, 10, 100})},
                      {true, Row({1, 10, 100})}});
  ASSERT_TRUE(view_.Validate());
  EXPECT_FALSE(ContainsTuple(view_, Row({7, 70, 700})));
  EXPECT_TRUE(ContainsTuple(view_, Row({1, 10, 100})));
  EXPECT_EQ(view_.CountTuples(), 3);
}

TEST_F(UpdateTest, ApplyBatchPreservesUntouchedSubtreeIdentity) {
  // The root union is rebuilt, but children under keys the batch never
  // touches must keep their node pointers (the incremental checkpointer
  // relies on this to skip unchanged segments).
  ASSERT_FALSE(view_.roots().empty());
  const FactNode* root = view_.roots()[0];
  ASSERT_NE(root, nullptr);
  std::vector<std::pair<ValueRef, FactPtr>> before;
  for (int i = 0; i < root->size(); ++i) {
    before.emplace_back(root->values[static_cast<size_t>(i)],
                        root->child(i, 1, 0));
  }
  ApplyBatch(&view_, {{true, Row({50, 51, 52})}});  // new key, new branch
  const FactNode* after = view_.roots()[0];
  for (const auto& [val, child] : before) {
    bool found = false;
    for (int i = 0; i < after->size(); ++i) {
      if (after->values[static_cast<size_t>(i)] == val) {
        EXPECT_EQ(after->child(i, 1, 0), child) << "child rebuilt needlessly";
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(UpdateTest, ApplyBatchEmptyAndErrorCases) {
  Relation before = view_.Flatten();
  ApplyBatch(&view_, {});  // no-op
  EXPECT_TRUE(SameSet(view_.Flatten(), before, {a_, b_, c_}, reg_));
  EXPECT_THROW(ApplyBatch(&view_, {{true, Row({1, 2})}}),
               std::invalid_argument);  // arity mismatch
  // Validation precedes mutation: the failed batch changed nothing.
  EXPECT_TRUE(SameSet(view_.Flatten(), before, {a_, b_, c_}, reg_));
}

TEST_F(UpdateTest, ApplyBatchCanEmptyAndRefillTheView) {
  std::vector<BatchOp> wipe;
  for (const auto& t :
       {Row({1, 10, 100}), Row({1, 20, 100}), Row({2, 10, 200})}) {
    wipe.push_back({false, t});
  }
  ApplyBatch(&view_, wipe);
  EXPECT_TRUE(view_.empty());
  ApplyBatch(&view_, {{true, Row({4, 40, 400})}});
  ASSERT_TRUE(view_.Validate());
  EXPECT_EQ(view_.CountTuples(), 1);
  EXPECT_TRUE(ContainsTuple(view_, Row({4, 40, 400})));
}

class BatchProperty : public ::testing::TestWithParam<int> {};

TEST_P(BatchProperty, RandomBatchesMatchSequentialReplay) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("bpa" + std::to_string(GetParam()));
  AttrId b = reg.Intern("bpb" + std::to_string(GetParam()));
  Relation empty{RelSchema({a, b})};
  Factorisation batched = FactoriseRelation(empty, {a, b});
  Factorisation seq = FactoriseRelation(empty, {a, b});

  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) + 4242);
  for (int round = 0; round < 25; ++round) {
    std::vector<BatchOp> ops;
    size_t n = 1 + rng() % 10;
    for (size_t i = 0; i < n; ++i) {
      BatchOp op;
      op.insert = rng() % 2 == 0;
      op.tuple = Row({static_cast<int64_t>(rng() % 6),
                      static_cast<int64_t>(rng() % 6)});
      ops.push_back(std::move(op));
    }
    ApplyBatch(&batched, ops);
    for (const BatchOp& op : ops) {
      if (op.insert) {
        InsertTuple(&seq, op.tuple);
      } else {
        DeleteTuple(&seq, op.tuple);
      }
    }
    ASSERT_TRUE(batched.Validate()) << "round " << round;
    ASSERT_EQ(batched.CountTuples(), seq.CountTuples()) << "round " << round;
  }
  if (!seq.empty()) {
    EXPECT_TRUE(SameSet(batched.Flatten(), seq.Flatten(), {a, b}, reg));
  } else {
    EXPECT_TRUE(batched.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace fdb
