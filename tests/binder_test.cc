#include "fdb/query/binder.h"

#include <gtest/gtest.h>

#include "fdb/query/parser.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(BinderTest, ResolvesRelationsAndColumns) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(ParseSql("SELECT customer FROM Orders"), p.db.get());
  EXPECT_EQ(q.from, std::vector<std::string>{"Orders"});
  ASSERT_EQ(q.outputs.size(), 1u);
  EXPECT_EQ(q.outputs[0].attr, p.attr("customer"));
  EXPECT_TRUE(q.distinct_projection);  // plain projection has set semantics
  EXPECT_FALSE(q.has_aggregates());
}

TEST(BinderTest, ViewsResolveToo) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(ParseSql("SELECT * FROM R"), p.db.get());
  EXPECT_TRUE(q.select_star);
  EXPECT_EQ(q.outputs.size(), 5u);
}

TEST(BinderTest, UnknownRelationThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(Bind(ParseSql("SELECT * FROM Nope"), p.db.get()),
               std::invalid_argument);
}

TEST(BinderTest, UnknownColumnThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(Bind(ParseSql("SELECT nope FROM Orders"), p.db.get()),
               std::invalid_argument);
}

TEST(BinderTest, ColumnFromOtherRelationThrows) {
  Pizzeria p = MakePizzeria();
  // price exists in the registry but not in Orders.
  EXPECT_THROW(Bind(ParseSql("SELECT price FROM Orders"), p.db.get()),
               std::invalid_argument);
}

TEST(BinderTest, WhereSplitsEqualityAndConstant) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT * FROM R WHERE customer = date AND price > 3"),
      p.db.get());
  ASSERT_EQ(q.eq_selections.size(), 1u);
  EXPECT_EQ(q.eq_selections[0].first, p.attr("customer"));
  ASSERT_EQ(q.const_selections.size(), 1u);
  EXPECT_EQ(std::get<1>(q.const_selections[0]), CmpOp::kGt);
}

TEST(BinderTest, SelfEqualityIsDropped) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT * FROM R WHERE customer = customer"), p.db.get());
  EXPECT_TRUE(q.eq_selections.empty());
}

TEST(BinderTest, AttributeInequalityThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(
      Bind(ParseSql("SELECT * FROM R WHERE customer < date"), p.db.get()),
      std::invalid_argument);
}

TEST(BinderTest, AggregatesAndGrouping) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer, sum(price) AS revenue FROM R "
               "GROUP BY customer"),
      p.db.get());
  EXPECT_TRUE(q.has_aggregates());
  ASSERT_EQ(q.tasks.size(), 1u);
  EXPECT_EQ(q.tasks[0].fn, AggFn::kSum);
  EXPECT_EQ(q.tasks[0].source, p.attr("price"));
  EXPECT_EQ(q.group, std::vector<AttrId>{p.attr("customer")});
  EXPECT_EQ(q.task_ids[0], *p.db->registry().Find("revenue"));
}

TEST(BinderTest, NonGroupedColumnThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(
      Bind(ParseSql("SELECT date, sum(price) FROM R GROUP BY customer"),
           p.db.get()),
      std::invalid_argument);
}

TEST(BinderTest, AvgExpandsToSumAndCount) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT avg(price) FROM R GROUP BY customer"), p.db.get());
  ASSERT_EQ(q.tasks.size(), 2u);
  EXPECT_EQ(q.tasks[0].fn, AggFn::kSum);
  EXPECT_EQ(q.tasks[1].fn, AggFn::kCount);
  ASSERT_EQ(q.outputs.size(), 1u);
  EXPECT_EQ(q.outputs[0].kind, OutputColumn::Kind::kAvg);
}

TEST(BinderTest, DuplicateAggregatesShareOneTask) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT sum(price), avg(price), count(*) FROM R "
               "GROUP BY customer"),
      p.db.get());
  // sum(price) and count(*) are shared with avg's expansion.
  EXPECT_EQ(q.tasks.size(), 2u);
  EXPECT_EQ(q.outputs.size(), 3u);
}

TEST(BinderTest, GroupByWithoutAggregatesIsDistinctProjection) {
  Pizzeria p = MakePizzeria();
  BoundQuery q =
      Bind(ParseSql("SELECT customer FROM R GROUP BY customer"), p.db.get());
  EXPECT_FALSE(q.has_aggregates());
  EXPECT_TRUE(q.distinct_projection);
}

TEST(BinderTest, HavingBindsAliasTaskAndGroupColumn) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer, sum(price) AS revenue FROM R GROUP BY "
               "customer HAVING revenue > 10 AND customer <> 'Mario' AND "
               "count(*) >= 1"),
      p.db.get());
  ASSERT_EQ(q.having.size(), 3u);
  EXPECT_EQ(q.having[0].kind, BoundHaving::Kind::kTask);
  EXPECT_EQ(q.having[1].kind, BoundHaving::Kind::kGroupCol);
  EXPECT_EQ(q.having[2].kind, BoundHaving::Kind::kTask);
  // The count(*) task was added for HAVING only: 2 tasks + count.
  EXPECT_EQ(q.tasks.size(), 2u);
}

TEST(BinderTest, HavingWithoutGroupingThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(
      Bind(ParseSql("SELECT customer FROM Orders HAVING customer = 'x'"),
           p.db.get()),
      std::invalid_argument);
}

TEST(BinderTest, OrderByOutputColumnsOnly) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer, sum(price) AS revenue FROM R GROUP BY "
               "customer ORDER BY revenue DESC"),
      p.db.get());
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_EQ(q.order_by[0].attr, *p.db->registry().Find("revenue"));
  EXPECT_EQ(q.order_by[0].dir, SortDir::kDesc);
}

TEST(BinderTest, OrderByNonOutputThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(
      Bind(ParseSql("SELECT customer FROM Orders ORDER BY date"),
           p.db.get()),
      std::invalid_argument);
}

TEST(BinderTest, SelectStarOrderByAnyColumn) {
  Pizzeria p = MakePizzeria();
  BoundQuery q =
      Bind(ParseSql("SELECT * FROM Orders ORDER BY date"), p.db.get());
  EXPECT_EQ(q.order_by.size(), 1u);
}

TEST(BinderTest, AssembleOutputsComputesAvgAndHaving) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer, avg(price) AS ap FROM R GROUP BY customer "
               "HAVING count(*) > 2"),
      p.db.get());
  // Raw relation: customer, sum, count columns (task_ids order).
  std::vector<AttrId> attrs = {p.attr("customer")};
  for (AttrId id : q.task_ids) attrs.push_back(id);
  Relation raw{RelSchema(attrs)};
  raw.Add({Value("A"), Value(10), Value(4)});   // avg 2.5, kept
  raw.Add({Value("B"), Value(10), Value(2)});   // filtered by having
  Relation out = AssembleOutputs(q, raw);
  ASSERT_EQ(out.size(), 1);
  EXPECT_EQ(out.rows()[0][0].as_string(), "A");
  EXPECT_DOUBLE_EQ(out.rows()[0][1].as_double(), 2.5);
}

TEST(BinderTest, AssembleOutputsRespectsLimit) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer, count(*) FROM R GROUP BY customer"),
      p.db.get());
  std::vector<AttrId> attrs = {p.attr("customer"), q.task_ids[0]};
  Relation raw{RelSchema(attrs)};
  raw.Add({Value("A"), Value(1)});
  raw.Add({Value("B"), Value(2)});
  raw.Add({Value("C"), Value(3)});
  Relation out = AssembleOutputs(q, raw, 2);
  EXPECT_EQ(out.size(), 2);
}

}  // namespace
}  // namespace fdb
