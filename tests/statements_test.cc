#include "fdb/obs/statements.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/obs/log.h"
#include "fdb/obs/trace.h"
#include "fdb/query/binder.h"
#include "fdb/query/parser.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

// Fresh observability state per test: the store and switches are
// process-wide.
class StatementsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SetLogEnabled(false);
    obs::StatementStore::Instance().Clear();
  }
  void TearDown() override {
    obs::StatementStore::Instance().Clear();
    obs::SetMetricsEnabled(false);
  }
};

uint64_t Fingerprint(Database* db, const std::string& sql) {
  return Bind(ParseSql(sql), db).fingerprint;
}

TEST_F(StatementsTest, FingerprintIgnoresConstants) {
  Pizzeria p = MakePizzeria();
  uint64_t a = Fingerprint(
      p.db.get(), "SELECT customer FROM R WHERE price < 5");
  uint64_t b = Fingerprint(
      p.db.get(), "SELECT customer FROM R WHERE price < 99");
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, b) << "constant values must not change the fingerprint";

  uint64_t lim1 = Fingerprint(
      p.db.get(), "SELECT customer, sum(price) FROM R GROUP BY customer "
                  "LIMIT 1");
  uint64_t lim9 = Fingerprint(
      p.db.get(), "SELECT customer, sum(price) FROM R GROUP BY customer "
                  "LIMIT 9");
  EXPECT_EQ(lim1, lim9);
}

TEST_F(StatementsTest, FingerprintSeparatesShapes) {
  Pizzeria p = MakePizzeria();
  uint64_t base = Fingerprint(p.db.get(), "SELECT customer FROM R");
  // Different output column.
  EXPECT_NE(base, Fingerprint(p.db.get(), "SELECT pizza FROM R"));
  // Added predicate (same output).
  EXPECT_NE(base, Fingerprint(
                      p.db.get(), "SELECT customer FROM R WHERE price < 5"));
  // Different comparison operator, same attribute and constant arity.
  EXPECT_NE(
      Fingerprint(p.db.get(), "SELECT customer FROM R WHERE price < 5"),
      Fingerprint(p.db.get(), "SELECT customer FROM R WHERE price > 5"));
  // Aggregate vs plain projection.
  EXPECT_NE(base, Fingerprint(p.db.get(),
                              "SELECT customer, sum(price) FROM R "
                              "GROUP BY customer"));
  // ORDER BY direction.
  EXPECT_NE(
      Fingerprint(p.db.get(), "SELECT customer, sum(price) AS s FROM R "
                              "GROUP BY customer ORDER BY s"),
      Fingerprint(p.db.get(), "SELECT customer, sum(price) AS s FROM R "
                              "GROUP BY customer ORDER BY s DESC"));
  // LIMIT present vs absent.
  EXPECT_NE(base, Fingerprint(p.db.get(), "SELECT customer FROM R LIMIT 2"));
}

TEST_F(StatementsTest, ExplainAnalyzeSharesFingerprint) {
  Pizzeria p = MakePizzeria();
  uint64_t plain = Fingerprint(
      p.db.get(), "SELECT customer, sum(price) FROM R GROUP BY customer");
  uint64_t analyzed = Fingerprint(
      p.db.get(),
      "EXPLAIN ANALYZE SELECT customer, sum(price) FROM R GROUP BY customer");
  EXPECT_EQ(plain, analyzed);
}

TEST_F(StatementsTest, NormalizedTextMasksConstants) {
  Pizzeria p = MakePizzeria();
  BoundQuery q = Bind(
      ParseSql("SELECT customer FROM R WHERE price < 5 LIMIT 2"),
      p.db.get());
  EXPECT_EQ(q.normalized_sql.find("5"), std::string::npos);
  EXPECT_EQ(q.normalized_sql.find("2"), std::string::npos);
  EXPECT_NE(q.normalized_sql.find("?"), std::string::npos);
  EXPECT_NE(q.normalized_sql.find("customer"), std::string::npos);
}

TEST_F(StatementsTest, AggregatesAcrossEnginesAndConstants) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  // Three fdb runs with different constants, two rdb runs: one entry.
  fdb.ExecuteSql("SELECT customer FROM R WHERE price < 2");
  fdb.ExecuteSql("SELECT customer FROM R WHERE price < 5");
  fdb.ExecuteSql("SELECT customer FROM R WHERE price < 9");
  rdb.ExecuteSql("SELECT customer FROM R WHERE price < 5");
  rdb.ExecuteSql("SELECT customer FROM R WHERE price < 7");

  std::vector<obs::StatementRow> rows =
      obs::StatementStore::Instance().Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const obs::StatementRow& r = rows[0];
  EXPECT_EQ(r.calls, 5u);
  EXPECT_EQ(r.calls_fdb, 3u);
  EXPECT_EQ(r.calls_rdb, 2u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.total_ns, 0u);
  EXPECT_GE(r.max_ns, r.min_ns);
  EXPECT_GE(r.total_ns, r.max_ns);
  EXPECT_EQ(r.latency.count, 5u);
  EXPECT_EQ(r.latency.sum, r.total_ns);
  EXPECT_NE(r.text.find("?"), std::string::npos);
}

TEST_F(StatementsTest, MatchesExplainAnalyzeTimings) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult res = fdb.ExecuteSql(
      "EXPLAIN ANALYZE SELECT customer, sum(price) FROM R "
      "GROUP BY customer");
  ASSERT_NE(res.trace, nullptr);

  std::vector<obs::StatementRow> rows =
      obs::StatementStore::Instance().Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const obs::StatementRow& r = rows[0];
  EXPECT_EQ(r.calls, 1u);
  // One call: total == min == max, all equal to the measured latency.
  EXPECT_EQ(r.total_ns, r.min_ns);
  EXPECT_EQ(r.total_ns, r.max_ns);
  // The statement latency wraps ExecuteImpl, which contains every
  // engine-side trace span (input/optimise/ops/aggregate) — so it must
  // dominate each of them (same steady clock).
  for (const obs::TraceSpan& s : res.trace->Spans()) {
    if (s.name == "parse" || s.name == "bind") continue;  // outside Execute
    EXPECT_GE(r.total_ns, static_cast<uint64_t>(s.dur_ns)) << s.name;
  }
  // Traced run: the factorised-input footprint was sampled.
  EXPECT_EQ(r.footprint_samples, 1u);
  EXPECT_GT(r.last_singletons, 0u);
  EXPECT_GT(r.last_flat_values, 0u);
  EXPECT_GT(r.last_compression, 0.0);
  EXPECT_EQ(r.rows, 3u);  // three customers
}

TEST_F(StatementsTest, RecordsErrors) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  // Bind against a real relation, then point FROM at a missing one: the
  // failure happens inside Execute, which must record it and rethrow.
  BoundQuery q = Bind(ParseSql("SELECT customer FROM Orders"), p.db.get());
  q.from = {"NoSuchRelation"};
  EXPECT_THROW(fdb.Execute(q), std::exception);

  std::vector<obs::StatementRow> rows =
      obs::StatementStore::Instance().Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[0].errors, 1u);
  EXPECT_EQ(rows[0].rows, 0u);
}

TEST_F(StatementsTest, DisabledMetricsRecordNothing) {
  obs::SetMetricsEnabled(false);
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  fdb.ExecuteSql("SELECT customer FROM R");
  EXPECT_EQ(obs::StatementStore::Instance().size(), 0u);
}

TEST_F(StatementsTest, CapAndLruEviction) {
  obs::StatementStore& store = obs::StatementStore::Instance();
  obs::Registry& reg = obs::Registry::Instance();
  uint64_t evicted_before = reg.GetCounter("statements.evicted").Value();

  // A small set of "hot" fingerprints recorded first...
  std::vector<uint64_t> hot;
  for (uint64_t i = 1; i <= 16; ++i) hot.push_back(i * 0x9E3779B97F4A7C15ull);
  for (uint64_t fp : hot) store.Record(fp, "hot", true, 100, 1, false);

  // ...then a flood of 20k distinct statements, with the hot set
  // re-touched throughout so its recency stays fresh.
  for (uint64_t i = 1; i <= 20000; ++i) {
    store.Record(0x5851F42D4C957F2Dull * i + 12345, "cold", false, 50, 0,
                 false);
    if (i % 1000 == 0) {
      for (uint64_t fp : hot) store.Record(fp, "hot", true, 100, 1, false);
    }
  }

  EXPECT_LE(store.size(), obs::StatementStore::kMaxEntries);
  uint64_t evicted = reg.GetCounter("statements.evicted").Value();
  EXPECT_GT(evicted, evicted_before) << "a 20k flood must evict";

  // LRU, not random: every re-touched hot statement survived the flood.
  std::vector<obs::StatementRow> rows = store.Snapshot();
  size_t hot_alive = 0;
  for (const obs::StatementRow& r : rows) {
    for (uint64_t fp : hot) {
      if (r.fingerprint == fp) ++hot_alive;
    }
  }
  EXPECT_EQ(hot_alive, hot.size());
}

TEST_F(StatementsTest, SlowQueryEventEmitted) {
  obs::SetLogEnabled(true);
  obs::EventLog& log = obs::EventLog::Instance();
  log.Clear();
  int64_t saved = log.slow_query_ns();
  log.set_slow_query_ns(0);  // everything is slow

  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  fdb.ExecuteSql("SELECT customer FROM R");

  bool found = false;
  for (const obs::Event& e : log.Snapshot()) {
    if (e.type == obs::EventType::kSlowQuery) {
      found = true;
      EXPECT_NE(e.DetailString().find("customer"), std::string::npos);
      EXPECT_NE(e.DetailString().find("engine=fdb"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
  log.set_slow_query_ns(saved);
  obs::SetLogEnabled(false);
}

}  // namespace
}  // namespace fdb
