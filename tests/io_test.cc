#include "fdb/core/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/ops/aggregate.h"
#include "fdb/core/ops/swap.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameSet;

TEST(IoTest, PizzeriaRoundTrip) {
  Pizzeria p = MakePizzeria();
  std::ostringstream out;
  WriteFactorisation(p.view(), p.db->registry(), out);

  Database fresh;
  std::istringstream in(out.str());
  Factorisation f = ReadFactorisation(in, &fresh.registry());
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(f.tree().SatisfiesPathConstraint());
  EXPECT_EQ(f.CountSingletons(), 26);
  EXPECT_EQ(f.CountTuples(), 13);
  // Attribute names survive into the fresh registry.
  EXPECT_TRUE(fresh.registry().Find("pizza").has_value());
  Relation flat = f.Flatten();
  EXPECT_EQ(flat.size(), 13);
}

TEST(IoTest, RoundTripPreservesRelation) {
  Pizzeria p = MakePizzeria();
  std::ostringstream out;
  WriteFactorisation(p.view(), p.db->registry(), out);
  std::istringstream in(out.str());
  // Same registry: attribute ids resolve identically.
  Factorisation f = ReadFactorisation(in, &p.db->registry());
  EXPECT_TRUE(SameSet(f.Flatten(), p.view().Flatten(),
                      p.view().OutputSchema().attrs(), p.db->registry()));
}

TEST(IoTest, AggregateNodesRoundTrip) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplyAggregate(&f, &p.db->registry(), p.n_item,
                 {{AggFn::kSum, p.attr("price")},
                  {AggFn::kCount, kInvalidAttr}});
  ApplySwap(&f, p.n_date);
  std::ostringstream out;
  WriteFactorisation(f, p.db->registry(), out);
  std::istringstream in(out.str());
  Factorisation g = ReadFactorisation(in, &p.db->registry());
  EXPECT_TRUE(g.Validate());
  // Aggregate semantics survive: the global sum is still computable.
  Value s = EvalAggregate(g.tree(), g.tree().roots()[0], *g.roots()[0],
                          {AggFn::kSum, p.attr("price")});
  EXPECT_EQ(s.as_int(), 40);
}

TEST(IoTest, SharedSubexpressionsWrittenOnce) {
  // A compressed factorisation with a shared subtree must not blow up.
  AttributeRegistry reg;
  AttrId a = reg.Intern("ioa"), b = reg.Intern("iob");
  Relation r{RelSchema({a, b})};
  for (int64_t x : {1, 2, 3, 4}) {
    for (int64_t y : {10, 20, 30}) r.Add({Value(x), Value(y)});
  }
  Factorisation f = FactoriseRelation(r, {a, b});
  CompressInPlace(&f);
  std::ostringstream out;
  WriteFactorisation(f, reg, out);
  // 1 root node + 1 shared leaf = 2 fact records, not 5.
  EXPECT_NE(out.str().find("facts 2\n"), std::string::npos) << out.str();
  std::istringstream in(out.str());
  Factorisation g = ReadFactorisation(in, &reg);
  EXPECT_EQ(g.CountTuples(), 12);
  // Sharing survives the round trip (references, not copies).
  EXPECT_EQ(g.roots()[0]->child(0, 1, 0),
            g.roots()[0]->child(1, 1, 0));
}

TEST(IoTest, StringValuesWithSpaces) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ios");
  FTree t;
  t.AddNode({a}, -1);
  t.AddEdge({{a}, 2.0, "R with spaces"});
  Factorisation f(t, {MakeLeaf({Value("hello world"), Value("x  y")})});
  std::ostringstream out;
  WriteFactorisation(f, reg, out);
  std::istringstream in(out.str());
  Factorisation g = ReadFactorisation(in, &reg);
  ASSERT_EQ(g.roots()[0]->size(), 2);
  EXPECT_EQ(g.roots()[0]->values[0].as_string(), "hello world");
  EXPECT_EQ(g.tree().edges()[0].name, "R with spaces");
}

TEST(IoTest, MixedValueTypesRoundTrip) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("iot");
  FTree t;
  t.AddNode({a}, -1);
  Factorisation f(
      t, {MakeLeaf({Value(), Value(int64_t{-7}), Value(2.5), Value("s")})});
  std::ostringstream out;
  WriteFactorisation(f, reg, out);
  std::istringstream in(out.str());
  Factorisation g = ReadFactorisation(in, &reg);
  ASSERT_EQ(g.roots()[0]->size(), 4);
  EXPECT_TRUE(g.roots()[0]->values[0].is_null());
  EXPECT_EQ(g.roots()[0]->values[1].as_int(), -7);
  EXPECT_DOUBLE_EQ(g.roots()[0]->values[2].as_double(), 2.5);
  EXPECT_EQ(g.roots()[0]->values[3].as_string(), "s");
}

TEST(IoTest, EmptyFactorisationRoundTrip) {
  AttributeRegistry reg;
  AttrId a = reg.Intern("ioe");
  FTree t;
  t.AddNode({a}, -1);
  Factorisation f(t, {MakeLeaf({})});
  std::ostringstream out;
  WriteFactorisation(f, reg, out);
  std::istringstream in(out.str());
  Factorisation g = ReadFactorisation(in, &reg);
  EXPECT_TRUE(g.empty());
}

TEST(IoTest, CorruptInputsThrow) {
  AttributeRegistry reg;
  std::istringstream bad1("not the magic\n");
  EXPECT_THROW(ReadFactorisation(bad1, &reg), std::invalid_argument);
  std::istringstream bad2("FDB-FACT 1\nnodes banana\n");
  EXPECT_THROW(ReadFactorisation(bad2, &reg), std::invalid_argument);
  std::istringstream bad3("FDB-FACT 1\nnodes 1\n");
  EXPECT_THROW(ReadFactorisation(bad3, &reg), std::invalid_argument);
}

// Every index and count in the stream is bounds-checked: out-of-range
// ids, inconsistent wiring and overflowing literals must all surface as
// std::invalid_argument, never as a crash or a foreign exception type.
TEST(IoTest, CorruptIndicesAndCountsThrow) {
  auto expect_bad = [](const std::string& stream) {
    AttributeRegistry reg;
    std::istringstream in(stream);
    EXPECT_THROW(ReadFactorisation(in, &reg), std::invalid_argument)
        << stream;
  };
  // Negative node count.
  expect_bad("FDB-FACT 1\nnodes -3\n");
  // Parent id out of range.
  expect_bad("FDB-FACT 1\nnodes 1\nnode 1 5 atomic 1 a\nchildren 0\n");
  // Child id out of range.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 1 9\n");
  // Root id out of range.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 0\nroots 1 7\n");
  // Self-parenting cycle: node 0's child is itself.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 0 atomic 1 a\nchildren 1 0\n"
      "roots 1 0\nedges 0\nfacts 0\nrootdata 1 0\n");
  // Two roots naming the same node.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 0\n"
      "roots 2 0 0\nedges 0\nfacts 0\nrootdata 2 0 0\n");
  // Child whose parent field disagrees.
  expect_bad(
      "FDB-FACT 1\nnodes 2\nnode 1 -1 atomic 1 a\nchildren 1 1\n"
      "node 1 -1 atomic 1 b\nchildren 0\n"
      "roots 1 0\nedges 0\nfacts 0\nrootdata 1 0\n");
  // Unknown aggregate function id.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 agg 9 - x 0\nchildren 0\n");
  // Live atomic node without attributes (only tombstones may lose theirs).
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 0\nchildren 0\n"
      "roots 1 0\nedges 0\nfacts 0\nrootdata 1 0\n");
  // Integer literal overflowing int64 inside a value.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 0\n"
      "roots 1 0\nedges 0\nfacts 1\n"
      "f 1 i99999999999999999999999999 0\nrootdata 1 0\n");
  // String length overflowing / running past the line.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 0\n"
      "roots 1 0\nedges 0\nfacts 1\n"
      "f 1 s99999999999999999999:x 0\nrootdata 1 0\n");
  // Non-numeric edge weight.
  expect_bad(
      "FDB-FACT 1\nnodes 1\nnode 1 -1 atomic 1 a\nchildren 0\n"
      "roots 1 0\nedges 1\nedge pancake 1 a R\n");
}

TEST(IoTest, FileRoundTripOfWorkloadView) {
  Database db;
  InstallWorkload(&db, SmallParams(1), "R1");
  std::string path = ::testing::TempDir() + "/fdb_view.fdb";
  SaveFactorisation(*db.view("R1"), db.registry(), path);
  Database fresh;
  Factorisation f = LoadFactorisation(path, &fresh.registry());
  EXPECT_EQ(f.CountSingletons(), db.view("R1")->CountSingletons());
  EXPECT_EQ(f.CountTuples(), db.view("R1")->CountTuples());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fdb
