#include "fdb/relational/value.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, IntAccessors) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.numeric(), 42.0);
}

TEST(ValueTest, DoubleAccessors) {
  Value v(1.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.as_double(), 1.5);
}

TEST(ValueTest, StringAccessors) {
  Value v("abc");
  EXPECT_TRUE(v.is_string());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.as_string(), "abc");
}

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_GT(Value(-1), Value(-2));
}

TEST(ValueTest, MixedNumericOrdering) {
  EXPECT_LT(Value(1), Value(1.5));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_GT(Value(2.5), Value(2));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CrossTypeOrdering) {
  // null < numeric < string.
  EXPECT_LT(Value(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{999}), Value("a"));
  EXPECT_LT(Value(), Value(""));
}

TEST(ValueTest, NullEqualsNull) { EXPECT_EQ(Value(), Value()); }

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, StreamOperator) {
  std::ostringstream os;
  os << Value(int64_t{11});
  EXPECT_EQ(os.str(), "11");
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(int64_t{5}).Hash());
  EXPECT_EQ(Value("s").Hash(), Value("s").Hash());
  // Mixed numeric values that compare equal hash equally.
  EXPECT_EQ(Value(2.0).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, AddIntKeepsInt) {
  Value r = AddValues(Value(2), Value(3));
  EXPECT_TRUE(r.is_int());
  EXPECT_EQ(r.as_int(), 5);
}

TEST(ValueTest, AddPromotesToDouble) {
  Value r = AddValues(Value(2), Value(0.5));
  EXPECT_TRUE(r.is_double());
  EXPECT_DOUBLE_EQ(r.as_double(), 2.5);
}

TEST(ValueTest, AddNonNumericThrows) {
  EXPECT_THROW(AddValues(Value("a"), Value(1)), std::invalid_argument);
  EXPECT_THROW(AddValues(Value(), Value(1)), std::invalid_argument);
}

TEST(ValueTest, MulValues) {
  EXPECT_EQ(MulValues(Value(3), Value(4)).as_int(), 12);
  EXPECT_DOUBLE_EQ(MulValues(Value(3), Value(0.5)).as_double(), 1.5);
}

TEST(ValueTest, MulByCount) {
  EXPECT_EQ(MulByCount(Value(7), 3).as_int(), 21);
  EXPECT_DOUBLE_EQ(MulByCount(Value(1.5), 2).as_double(), 3.0);
}

TEST(ValueTest, MinMaxValue) {
  EXPECT_EQ(MinValue(Value(2), Value(5)), Value(2));
  EXPECT_EQ(MaxValue(Value(2), Value(5)), Value(5));
  EXPECT_EQ(MinValue(Value("b"), Value("a")), Value("a"));
}

TEST(ValueTest, EvalCmpAllOperators) {
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kEq, Value(1)));
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kNe, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kLt, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(1), CmpOp::kLe, Value(1)));
  EXPECT_TRUE(EvalCmp(Value(3), CmpOp::kGt, Value(2)));
  EXPECT_TRUE(EvalCmp(Value(3), CmpOp::kGe, Value(3)));
  EXPECT_FALSE(EvalCmp(Value(1), CmpOp::kGt, Value(2)));
}

TEST(ValueTest, CmpOpNames) {
  EXPECT_EQ(CmpOpName(CmpOp::kEq), "=");
  EXPECT_EQ(CmpOpName(CmpOp::kNe), "<>");
  EXPECT_EQ(CmpOpName(CmpOp::kLe), "<=");
}

class ValueOrderTotality : public ::testing::TestWithParam<int> {};

TEST_P(ValueOrderTotality, AntisymmetryAndTotality) {
  std::vector<Value> vals = {Value(),        Value(int64_t{-3}),
                             Value(int64_t{0}), Value(2.5),
                             Value(int64_t{7}), Value(""),
                             Value("abc"),   Value("zz")};
  int i = GetParam() / static_cast<int>(vals.size());
  int j = GetParam() % static_cast<int>(vals.size());
  const Value& a = vals[i];
  const Value& b = vals[j];
  int lt = a < b, gt = b < a, eq = a == b;
  EXPECT_EQ(lt + gt + eq, 1) << a << " vs " << b;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ValueOrderTotality,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace fdb
