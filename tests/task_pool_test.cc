#include "fdb/exec/task_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace fdb {
namespace exec {
namespace {

TEST(TaskPoolTest, ParallelForCoversRangeExactlyOnce) {
  TaskPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(kN, 7, [&](int, int64_t lo, int64_t hi) {
    int64_t s = 0;
    for (int64_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      s += i;
    }
    sum.fetch_add(s, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
  for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(TaskPoolTest, PartSlotsAreDenseAndBounded) {
  TaskPool pool(4);
  std::mutex mu;
  std::set<int> parts;
  pool.ParallelFor(64, 1, [&](int part, int64_t, int64_t) {
    std::lock_guard<std::mutex> g(mu);
    parts.insert(part);
  });
  ASSERT_FALSE(parts.empty());
  EXPECT_GE(*parts.begin(), 0);
  EXPECT_LT(*parts.rbegin(), pool.num_threads());
  // Dense: slots are handed out 0, 1, 2, … in claim order.
  EXPECT_EQ(*parts.rbegin(), static_cast<int>(parts.size()) - 1);
}

TEST(TaskPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  auto chunks_of = [](int threads) {
    TaskPool pool(threads);
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(1000, 64, [&](int, int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> g(mu);
      chunks.emplace(lo, hi);
    });
    return chunks;
  };
  EXPECT_EQ(chunks_of(1), chunks_of(4));
}

TEST(TaskPoolTest, SingleThreadPoolRunsInline) {
  TaskPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t sum = 0;
  pool.ParallelFor(100, 9, [&](int part, int64_t lo, int64_t hi) {
    EXPECT_EQ(part, 0);
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 100 * 99 / 2);
}

TEST(TaskPoolTest, ExceptionPropagatesAfterDraining) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100, 1,
                       [&](int, int64_t lo, int64_t) {
                         ran.fetch_add(1);
                         if (lo == 42) {
                           throw std::runtime_error("chunk 42 failed");
                         }
                       }),
      std::runtime_error);
  // All chunks were still claimed and finished before the rethrow.
  EXPECT_EQ(ran.load(), 100);
}

TEST(TaskPoolTest, NestedParallelForCompletes) {
  TaskPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int, int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      int64_t inner = 0;
      pool.ParallelFor(50, 5, [&](int, int64_t l, int64_t h) {
        // The inner caller participates in its own range, so this cannot
        // deadlock even with every worker busy in the outer loop.
        for (int64_t j = l; j < h; ++j) inner += 1;
      });
      total.fetch_add(inner);
    }
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(TaskPoolTest, SubmitRunsEveryTask) {
  TaskPool pool(3);
  constexpr int kTasks = 200;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> g(mu);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(30),
                          [&] { return done == kTasks; }));
}

TEST(TaskPoolTest, SetDefaultThreadsResizes) {
  int before = TaskPool::Default().num_threads();
  TaskPool::SetDefaultThreads(3);
  EXPECT_EQ(TaskPool::Default().num_threads(), 3);
  TaskPool::SetDefaultThreads(before);
  EXPECT_EQ(TaskPool::Default().num_threads(), before);
}

TEST(TaskPoolTest, ParallelForOrSerialMatchesAcrossWidths) {
  // The serial fallback uses the same chunk boundaries as the parallel
  // path, so a chunk-ordered reduction is bit-identical either way.
  auto run = [](int threads) {
    TaskPool::SetDefaultThreads(threads);
    std::vector<double> partial((1000 + 63) / 64);
    ParallelForOrSerial(1000, 64, 0, [&](int, int64_t lo, int64_t hi) {
      double s = 0;
      for (int64_t i = lo; i < hi; ++i) s += 1.0 / (1.0 + double(i));
      partial[lo / 64] = s;
    });
    double total = 0;
    for (double p : partial) total += p;
    return total;
  };
  int before = TaskPool::Default().num_threads();
  double serial = run(1);
  double parallel = run(4);
  TaskPool::SetDefaultThreads(before);
  EXPECT_EQ(serial, parallel);  // exact: same chunks, same combine order
}

}  // namespace
}  // namespace exec
}  // namespace fdb
