#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/exec/task_pool.h"
#include "fdb/obs/metrics.h"
#include "fdb/obs/sampler.h"
#include "fdb/obs/statements.h"
#include "fdb/serve/admission.h"
#include "fdb/serve/client.h"
#include "fdb/serve/server.h"
#include "fdb/serve/session.h"
#include "test_util.h"

// Drift check for README.md's metrics catalogue: exercise every
// instrumented subsystem, then assert each metric name the registry ends
// up holding appears in the README. A new metric without a catalogue row
// fails here, in plain text, before it ships undocumented.

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;

std::string ReadmeText() {
  std::string path = std::string(FDB_SOURCE_DIR) + "/README.md";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void ExerciseSubsystems() {
  // Engines + statement store + binder (engine.*, statements.*).
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  fdb.ExecuteSql("SELECT customer, sum(price) FROM R GROUP BY customer");
  rdb.ExecuteSql("SELECT customer FROM R WHERE price < 5");

  // Storage: save, open, checkpoint, WAL commit (storage.*, wal.*, io.*).
  std::string path = ::testing::TempDir() + "/catalogue.fdbs";
  Database db;
  AttrId a = db.Attr("cat_a"), b = db.Attr("cat_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < 50; ++x) r.Add({Value(x / 10), Value(x)});
  db.AddView("V", FactoriseRelation(r, {a, b}));
  db.EnableWal(path);
  db.Insert("V", Row({100, 1000}));
  db.Checkpoint(path);
  Database re = Database::Open(path);

  // Task pool (taskpool.*).
  exec::TaskPool::Default().ParallelFor(64, 1, [](int, int64_t, int64_t) {});

  // Sampler (sampler.ticks).
  obs::MetricsSampler sampler;
  sampler.SampleOnce();

  // Serve path (serve.*): a live server with one read + one write over
  // the wire, a rejected admission, and a memory-killed statement.
  {
    serve::Server server(&db, serve::ServerConfig{});
    server.Start();
    serve::Client c;
    c.Connect("127.0.0.1", server.port());
    c.Query("SELECT cat_a, cat_b FROM V");
    c.Query("INSERT INTO V VALUES (200, 2000)");
    c.Close();
    server.Shutdown();

    serve::AdmissionConfig tight;
    tight.max_concurrent = 1;
    tight.max_queue = 0;
    serve::AdmissionController adm(tight);
    adm.Admit();
    adm.Admit();  // saturated: rejected (serve.admission_rejects)
    adm.Release();

    serve::AdmissionConfig limited;
    limited.query_mem_bytes = 1;  // every query dies (serve.queries_killed)
    serve::AdmissionController adm2(limited);
    fdb::base::Mutex write_mu;
    std::atomic<bool> draining{false};
    serve::ServeContext ctx;
    ctx.db = &db;
    ctx.admission = &adm2;
    ctx.write_mu = &write_mu;
    ctx.draining = &draining;
    serve::Session session(ctx, -1, "catalogue");
    std::vector<uint8_t> out;
    session.HandleStatement("SELECT cat_a, cat_b FROM V", &out);
  }
}

TEST(MetricsCatalogueTest, ReadmeDocumentsEveryRegisteredMetric) {
  obs::SetMetricsEnabled(true);
  ExerciseSubsystems();
  std::string readme = ReadmeText();

  std::vector<std::string> missing;
  for (const obs::MetricRow& row : obs::Registry::Instance().Snapshot()) {
    std::string name = row.name;
    if (name.rfind("obs_test.", 0) == 0 ||
        name.rfind("sampler_test.", 0) == 0 ||
        name.rfind("bench.", 0) == 0) {
      continue;  // test/bench-local instruments, not product metrics
    }
    // Per-site I/O counters are dynamic ("io." + call site); the
    // catalogue documents them as one generic `io.<site>` row.
    if (name.rfind("io.", 0) == 0 &&
        readme.find("`io.<site>`") != std::string::npos &&
        readme.find("`" + name + "`") == std::string::npos) {
      continue;
    }
    if (readme.find(name) == std::string::npos) {
      missing.push_back(name);
    }
  }
  std::string all;
  for (const std::string& m : missing) all += "  " + m + "\n";
  EXPECT_TRUE(missing.empty())
      << "metrics registered but absent from README.md's catalogue "
         "(add a row to '### Metrics catalogue'):\n"
      << all;
  obs::SetMetricsEnabled(false);
}

}  // namespace
}  // namespace fdb
