#include "fdb/engine/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fdb {
namespace {

TEST(CsvTest, ReadsHeaderAndTypedRows) {
  Database db;
  std::istringstream in(
      "customer,price,note\n"
      "1,2.5,hello\n"
      "2,3,world\n");
  Relation r = ReadCsv(in, &db);
  EXPECT_EQ(r.schema().arity(), 3);
  EXPECT_EQ(db.registry().Name(r.schema().attr(0)), "customer");
  ASSERT_EQ(r.size(), 2);
  EXPECT_TRUE(r.rows()[0][0].is_int());
  EXPECT_TRUE(r.rows()[0][1].is_double());
  EXPECT_DOUBLE_EQ(r.rows()[0][1].as_double(), 2.5);
  EXPECT_EQ(r.rows()[1][2].as_string(), "world");
}

TEST(CsvTest, TrimsWhitespaceAndSkipsBlankLines) {
  Database db;
  std::istringstream in("a, b\n 1 , x \n\n2,y\n");
  Relation r = ReadCsv(in, &db);
  ASSERT_EQ(r.size(), 2);
  EXPECT_EQ(r.rows()[0][0].as_int(), 1);
  EXPECT_EQ(r.rows()[0][1].as_string(), "x");
}

TEST(CsvTest, NullCells) {
  Database db;
  std::istringstream in("a,b\nNULL,1\n2,\n");
  Relation r = ReadCsv(in, &db);
  EXPECT_TRUE(r.rows()[0][0].is_null());
  EXPECT_TRUE(r.rows()[1][1].is_null());
}

TEST(CsvTest, NegativeAndLargeNumbers) {
  Database db;
  std::istringstream in("a\n-42\n123456789012\n-1.5\n");
  Relation r = ReadCsv(in, &db);
  EXPECT_EQ(r.rows()[0][0].as_int(), -42);
  EXPECT_EQ(r.rows()[1][0].as_int(), 123456789012LL);
  EXPECT_DOUBLE_EQ(r.rows()[2][0].as_double(), -1.5);
}

TEST(CsvTest, RaggedRowThrows) {
  Database db;
  std::istringstream in("a,b\n1\n");
  EXPECT_THROW(ReadCsv(in, &db), std::invalid_argument);
}

TEST(CsvTest, MissingHeaderThrows) {
  Database db;
  std::istringstream in("");
  EXPECT_THROW(ReadCsv(in, &db), std::invalid_argument);
}

TEST(CsvTest, RoundTripThroughWrite) {
  Database db;
  std::istringstream in("x,y\n1,foo\n2,bar\n");
  Relation r = ReadCsv(in, &db);
  std::ostringstream out;
  WriteCsv(r, db.registry(), out);
  std::istringstream back(out.str());
  Relation r2 = ReadCsv(back, &db);
  EXPECT_TRUE(r.BagEquals(r2));
}

TEST(CsvTest, FileRoundTrip) {
  Database db;
  std::istringstream in("k,v\n7,seven\n8,eight\n");
  Relation r = ReadCsv(in, &db);
  std::string path = ::testing::TempDir() + "/fdb_csv_test.csv";
  SaveCsvRelation(r, db.registry(), path);
  LoadCsvRelation(&db, "loaded", path);
  ASSERT_NE(db.relation("loaded"), nullptr);
  EXPECT_TRUE(db.relation("loaded")->BagEquals(r));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileThrows) {
  Database db;
  EXPECT_THROW(LoadCsvRelation(&db, "x", "/nonexistent/nope.csv"),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdb
