#include "fdb/core/compress.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/ops/aggregate.h"
#include "fdb/core/ops/swap.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;
using testing::SameSet;

TEST(CompressTest, SharesIdenticalSubtrees) {
  // Two a-values with identical b-lists: the path trie stores the list
  // twice; compression shares it.
  AttributeRegistry reg;
  AttrId a = reg.Intern("ca"), b = reg.Intern("cb");
  Relation r{RelSchema({a, b})};
  for (int64_t x : {1, 2}) {
    for (int64_t y : {10, 20, 30}) r.Add(Row({x, y}));
  }
  Factorisation f = FactoriseRelation(r, {a, b});
  EXPECT_EQ(f.CountSingletons(), 8);  // 2 + 2×3
  CompressInPlace(&f);
  EXPECT_EQ(f.CountSingletons(), 8);        // logical view unchanged
  EXPECT_EQ(CountStoredSingletons(f), 5);   // 2 + 3 shared once
  const FactNode* root = f.roots()[0];
  EXPECT_EQ(root->child(0, 1, 0), root->child(1, 1, 0));
  EXPECT_TRUE(SameSet(f.Flatten(), r, {a, b}, reg));
}

TEST(CompressTest, PreservesRepresentedRelationOnPizzeria) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  Relation before = f.Flatten();
  CompressInPlace(&f);
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(SameSet(f.Flatten(), before, before.schema().attrs(),
                      p.db->registry()));
  EXPECT_LE(CountStoredSingletons(f), f.CountSingletons());
}

TEST(CompressTest, IdempotentAndStable) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  CompressInPlace(&f);
  int64_t stored = CountStoredSingletons(f);
  CompressInPlace(&f);
  EXPECT_EQ(CountStoredSingletons(f), stored);
}

TEST(CompressTest, AggregationWorksOnCompressedDag) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  CompressInPlace(&f);
  EXPECT_EQ(EvalCount(f.tree(), f.tree().roots()[0], *f.roots()[0]), 13);
  Value s = EvalAggregate(f.tree(), f.tree().roots()[0], *f.roots()[0],
                          {AggFn::kSum, p.attr("price")});
  EXPECT_EQ(s.as_int(), 40);
}

TEST(CompressTest, SwapAfterCompressionStaysCorrect) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  Relation before = f.Flatten();
  CompressInPlace(&f);
  ApplySwap(&f, p.n_date);
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(SameSet(f.Flatten(), before, before.schema().attrs(),
                      p.db->registry()));
}

TEST(CompressTest, EnumerationUnchanged) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  Relation plain = EnumerateToRelation(
      f, f.tree().TopologicalOrder(), std::vector<SortDir>(5, SortDir::kAsc));
  CompressInPlace(&f);
  Relation dag = EnumerateToRelation(
      f, f.tree().TopologicalOrder(), std::vector<SortDir>(5, SortDir::kAsc));
  EXPECT_TRUE(plain.BagEquals(dag));
}

TEST(CompressTest, WorkloadCompressionRatio) {
  // Packages share price lists (items have few distinct prices), so the
  // workload view compresses measurably.
  Database db;
  InstallWorkload(&db, SmallParams(2), "R1");
  Factorisation f = *db.view("R1");
  int64_t logical = f.CountSingletons();
  CompressInPlace(&f);
  int64_t stored = CountStoredSingletons(f);
  EXPECT_LT(stored, logical);
  EXPECT_EQ(f.CountSingletons(), logical);
}

TEST(CompressTest, DagSharingOnArenaNodes) {
  // Compression rebuilds every node into a fresh arena; identical subtrees
  // collapse to one arena node and the DAG stays valid and enumerable.
  AttributeRegistry reg;
  AttrId a = reg.Intern("dga"), b = reg.Intern("dgb"), c = reg.Intern("dgc");
  Relation r{RelSchema({a, b, c})};
  for (int64_t x : {1, 2, 3}) {
    for (int64_t y : {10, 20}) {
      for (int64_t z : {7, 8, 9}) r.Add(Row({x, y, z}));
    }
  }
  Factorisation f = FactoriseRelation(r, {a, b, c});
  const auto old_arena = f.arena();
  CompressInPlace(&f);
  EXPECT_NE(f.arena(), old_arena);  // full rebuild into a fresh arena
  // All three a-branches share one b-subtree, whose two entries share one
  // c-leaf: 3 + 2 + 3 stored singletons.
  EXPECT_EQ(CountStoredSingletons(f), 8);
  EXPECT_EQ(f.CountSingletons(), 3 + 3 * (2 + 2 * 3));
  const FactNode* root = f.roots()[0];
  EXPECT_EQ(root->child(0, 1, 0), root->child(1, 1, 0));
  EXPECT_EQ(root->child(1, 1, 0), root->child(2, 1, 0));
  const FactNode* bu = root->child(0, 1, 0);
  EXPECT_EQ(bu->child(0, 1, 0), bu->child(1, 1, 0));
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(SameSet(f.Flatten(), r, {a, b, c}, reg));
  // The arena only holds the distinct nodes of the DAG.
  EXPECT_EQ(f.arena()->num_nodes(), 3);
}

TEST(CompressTest, EmptyFactorisation) {
  FTree t;
  t.AddNode({0}, -1);
  Factorisation f(t, {MakeLeaf({})});
  CompressInPlace(&f);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(CountStoredSingletons(f), 0);
}

}  // namespace
}  // namespace fdb
