#include "fdb/storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Byte-identical flatten comparison: enumeration order is deterministic,
// so physical-representation changes (save/open, compaction) must not
// perturb the CSV dump at all.
std::string FlattenCsv(const Factorisation& f, const AttributeRegistry& reg) {
  std::ostringstream out;
  WriteCsv(f.Flatten(), reg, out);
  return out.str();
}

TEST(StorageSnapshotTest, PizzeriaRoundTripsThroughFile) {
  Pizzeria p = MakePizzeria();
  std::string expected = FlattenCsv(p.view(), p.db->registry());
  std::string path = TempPath("pizzeria.fdbs");
  p.db->Save(path);

  Database fresh = Database::Open(path);
  ASSERT_NE(fresh.view("R"), nullptr);
  EXPECT_EQ(fresh.view("R")->CountSingletons(), p.view().CountSingletons());
  EXPECT_EQ(fresh.view("R")->CountTuples(), p.view().CountTuples());
  EXPECT_TRUE(fresh.view("R")->Validate());
  EXPECT_EQ(FlattenCsv(*fresh.view("R"), fresh.registry()), expected);
  // Base relations decoded eagerly, including string cells.
  ASSERT_NE(fresh.relation("Orders"), nullptr);
  EXPECT_TRUE(fresh.relation("Orders")->BagEquals(*p.db->relation("Orders")));
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, Section6WorkloadRoundTripsByteIdentically) {
  Database db;
  InstallWorkload(&db, SmallParams(2), "R1");
  std::string expected = FlattenCsv(*db.view("R1"), db.registry());

  std::string bytes = storage::SerialiseDatabase(db);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  EXPECT_EQ(fresh.ViewNames(), db.ViewNames());
  EXPECT_EQ(fresh.RelationNames(), db.RelationNames());
  ASSERT_NE(fresh.view("R1"), nullptr);
  EXPECT_EQ(FlattenCsv(*fresh.view("R1"), fresh.registry()), expected);
  for (const std::string& name : db.RelationNames()) {
    EXPECT_TRUE(fresh.relation(name)->BagEquals(*db.relation(name))) << name;
  }
}

TEST(StorageSnapshotTest, CompressedDagSharingSurvives) {
  Database db;
  AttrId a = db.Attr("snap_a"), b = db.Attr("snap_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x : {1, 2, 3, 4}) {
    for (int64_t y : {10, 20, 30}) r.Add({Value(x), Value(y)});
  }
  Factorisation f = FactoriseRelation(r, {a, b});
  CompressInPlace(&f);
  int64_t stored = CountStoredSingletons(f);
  ASSERT_LT(stored, f.CountSingletons());  // sharing present
  db.AddView("V", std::move(f));

  std::string path = TempPath("dag.fdbs");
  db.Save(path);
  Database fresh = Database::Open(path);
  ASSERT_NE(fresh.view("V"), nullptr);
  // References, not copies: the stored size is unchanged.
  EXPECT_EQ(CountStoredSingletons(*fresh.view("V")), stored);
  EXPECT_EQ(fresh.view("V")->CountTuples(), 12);
  EXPECT_EQ(fresh.view("V")->roots()[0]->child(0, 1, 0),
            fresh.view("V")->roots()[0]->child(1, 1, 0));
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, BigIntsDoublesNullsAndStringsRoundTrip) {
  Database db;
  AttrId a = db.Attr("snap_mixed");
  FTree t;
  t.AddNode({a}, -1);
  int64_t big = (int64_t{1} << 50) + 7;
  Factorisation f(t, {MakeLeaf({Value(), Value(int64_t{-5}), Value(2.5),
                                Value(big), Value("snapshot str")})});
  db.AddView("V", std::move(f));

  std::string bytes = storage::SerialiseDatabase(db);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  const Factorisation* g = fresh.view("V");
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->roots()[0]->size(), 5);
  EXPECT_TRUE(g->roots()[0]->values[0].is_null());
  EXPECT_EQ(g->roots()[0]->values[1].as_int(), -5);
  EXPECT_DOUBLE_EQ(g->roots()[0]->values[2].as_double(), 2.5);
  EXPECT_EQ(g->roots()[0]->values[3].as_int(), big);
  EXPECT_EQ(g->roots()[0]->values[4].as_string(), "snapshot str");
}

TEST(StorageSnapshotTest, DictionaryRemapOnNonFreshDictionary) {
  // Force snapshot-local string ids (ranks) to disagree with live codes:
  // interning out of sorted order makes code != rank for these strings.
  ValueDict& dict = ValueDict::Default();
  dict.Encode(Value("zz remap"));
  dict.Encode(Value("aa remap"));
  Database db;
  AttrId a = db.Attr("snap_remap");
  FTree t;
  t.AddNode({a}, -1);
  Factorisation f(t, {MakeLeaf({Value("aa remap"), Value("mm remap"),
                                Value("zz remap")})});
  std::string expected = FlattenCsv(f, db.registry());
  db.AddView("V", std::move(f));

  std::string bytes = storage::SerialiseDatabase(db);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  ASSERT_NE(fresh.view("V"), nullptr);
  EXPECT_EQ(FlattenCsv(*fresh.view("V"), fresh.registry()), expected);
}

TEST(StorageSnapshotTest, EmptyViewRoundTrips) {
  Database db;
  AttrId a = db.Attr("snap_empty");
  FTree t;
  t.AddNode({a}, -1);
  db.AddView("V", Factorisation(t, {MakeLeaf({})}));
  std::string bytes = storage::SerialiseDatabase(db);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  ASSERT_NE(fresh.view("V"), nullptr);
  EXPECT_TRUE(fresh.view("V")->empty());
  EXPECT_EQ(fresh.view("V")->CountTuples(), 0);
}

TEST(StorageSnapshotTest, OpsOnMappedViewsOutliveTheDatabase) {
  // Satellite: views opened from a snapshot share the mapping's lifetime
  // through their arena; factorisations derived from them adopt that
  // arena, so results stay valid after the Database (and the mapping's
  // other owners) are gone.
  std::string path = TempPath("lifetime.fdbs");
  {
    Database db;
    AttrId a = db.Attr("life_a"), b = db.Attr("life_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < 50; ++x) r.Add({Value(x), Value(x * 10)});
    db.AddView("P", FactoriseRelation(r, {a, b}));
    db.Save(path);
  }
  Factorisation derived;
  {
    Database opened = Database::Open(path);
    Factorisation copy = *opened.view("P");  // shares the mapped arena
    // The copy's arena is shared with the database's view, so the update
    // writes into a fresh arena that adopts the mapped one.
    InsertTuple(&copy, testing::Row({7, 777}));
    derived = std::move(copy);
  }  // Database destroyed; mapping kept alive only via the adopt chain
  EXPECT_EQ(derived.CountTuples(), 51);
  EXPECT_TRUE(ContainsTuple(derived, testing::Row({7, 777})));
  EXPECT_TRUE(ContainsTuple(derived, testing::Row({31, 310})));
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, UpdatesOnOpenedViewWork) {
  std::string path = TempPath("update.fdbs");
  {
    Database db;
    AttrId a = db.Attr("upd_a"), b = db.Attr("upd_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < 10; ++x) r.Add({Value(x), Value(x)});
    db.AddView("P", FactoriseRelation(r, {a, b}));
    db.Save(path);
  }
  Database opened = Database::Open(path);
  Factorisation v = *opened.view("P");
  EXPECT_TRUE(DeleteTuple(&v, testing::Row({3, 3})));
  InsertTuple(&v, testing::Row({100, 100}));
  EXPECT_EQ(v.CountTuples(), 10);
  EXPECT_FALSE(ContainsTuple(v, testing::Row({3, 3})));
  // The database's own copy of the view is untouched (persistent data).
  EXPECT_EQ(opened.view("P")->CountTuples(), 10);
  EXPECT_TRUE(ContainsTuple(*opened.view("P"), testing::Row({3, 3})));
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, AddViewShadowsSnapshotView) {
  std::string path = TempPath("shadow.fdbs");
  Database db;
  AttrId a = db.Attr("shadow_a");
  FTree t;
  t.AddNode({a}, -1);
  db.AddView("V", Factorisation(t, {MakeLeaf({Value(int64_t{1})})}));
  db.Save(path);

  Database fresh = Database::Open(path);
  FTree t2;
  t2.AddNode({fresh.Attr("shadow_a")}, -1);
  fresh.AddView("V", Factorisation(
                         t2, {MakeLeaf({Value(int64_t{1}), Value(int64_t{2})})}));
  EXPECT_EQ(fresh.view("V")->CountTuples(), 2);
  EXPECT_EQ(fresh.ViewNames(), std::vector<std::string>{"V"});
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, SaveOverOpenSnapshotLeavesMappingIntact) {
  // Save replaces the file via write-then-rename, so a database still
  // serving views from a mapping of the old file keeps reading the old
  // inode while a fresh open sees the new content.
  std::string path = TempPath("atomic.fdbs");
  {
    Database db;
    AttrId a = db.Attr("atom_a"), b = db.Attr("atom_b");
    Relation r{RelSchema({a, b})};
    for (int64_t x = 0; x < 30; ++x) r.Add({Value(x), Value(x)});
    db.AddView("P", FactoriseRelation(r, {a, b}));
    db.Save(path);
  }
  Database opened = Database::Open(path);
  ASSERT_EQ(opened.view("P")->CountTuples(), 30);

  Factorisation grown = *opened.view("P");
  InsertTuple(&grown, testing::Row({100, 100}));
  Database next;
  next.Attr("atom_a");
  next.Attr("atom_b");
  next.AddView("P", std::move(grown));
  next.Save(path);  // overwrites the path the mapping came from

  // The already-open database still serves the old version...
  EXPECT_EQ(opened.view("P")->CountTuples(), 30);
  EXPECT_EQ(opened.view("P")->Flatten().size(), 30);
  // ...and a fresh open sees the new one.
  Database reopened = Database::Open(path);
  EXPECT_EQ(reopened.view("P")->CountTuples(), 31);
  std::remove(path.c_str());
}

TEST(StorageSnapshotTest, SaveWritesCompactedSegments) {
  // A view dragging update garbage saves as just its live nodes: the
  // reopened arena accounts fewer bytes than the garbage-laden original.
  Database db;
  AttrId a = db.Attr("comp_a"), b = db.Attr("comp_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < 40; ++x) r.Add({Value(x), Value(x)});
  Factorisation f = FactoriseRelation(r, {a, b});
  for (int64_t i = 0; i < 200; ++i) {
    InsertTuple(&f, testing::Row({1000 + i, 1}));
    DeleteTuple(&f, testing::Row({1000 + i, 1}));
  }
  int64_t dirty_bytes = f.arena()->bytes_used();
  db.AddView("P", std::move(f));

  std::string bytes = storage::SerialiseDatabase(db);
  Database fresh = Database::OpenSnapshot(
      storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
  ASSERT_NE(fresh.view("P"), nullptr);
  EXPECT_LT(fresh.view("P")->arena()->bytes_used(), dirty_bytes);
  EXPECT_EQ(fresh.view("P")->CountTuples(), 40);
}

}  // namespace
}  // namespace fdb
