#include "fdb/core/ftree.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fdb {
namespace {

// A small fixture building the paper's T1 shape over integer attr ids:
//   pizza(0) → { date(1) → customer(2), item(3) → price(4) }
class FTreeTest : public ::testing::Test {
 protected:
  FTreeTest() {
    pizza_ = t_.AddNode({0}, -1);
    date_ = t_.AddNode({1}, pizza_);
    customer_ = t_.AddNode({2}, date_);
    item_ = t_.AddNode({3}, pizza_);
    price_ = t_.AddNode({4}, item_);
    t_.AddEdge({{0, 1, 2}, 5.0, "Orders"});
    t_.AddEdge({{0, 3}, 7.0, "Pizzas"});
    t_.AddEdge({{3, 4}, 4.0, "Items"});
  }

  FTree t_;
  int pizza_, date_, customer_, item_, price_;
};

TEST_F(FTreeTest, StructureAccessors) {
  EXPECT_EQ(t_.roots(), std::vector<int>{pizza_});
  EXPECT_EQ(t_.parent(date_), pizza_);
  EXPECT_EQ(t_.children(pizza_), (std::vector<int>{date_, item_}));
  EXPECT_EQ(t_.num_nodes(), 5);
}

TEST_F(FTreeTest, TopologicalOrderParentsFirst) {
  std::vector<int> order = t_.TopologicalOrder();
  ASSERT_EQ(order.size(), 5u);
  auto pos = [&](int n) {
    return std::find(order.begin(), order.end(), n) - order.begin();
  };
  EXPECT_LT(pos(pizza_), pos(date_));
  EXPECT_LT(pos(date_), pos(customer_));
  EXPECT_LT(pos(item_), pos(price_));
}

TEST_F(FTreeTest, SubtreeNodesAndAttrs) {
  std::vector<int> sub = t_.SubtreeNodes(item_);
  EXPECT_EQ(sub, (std::vector<int>{item_, price_}));
  EXPECT_EQ(t_.SubtreeAttrIds(item_), (std::vector<AttrId>{3, 4}));
  EXPECT_EQ(t_.SubtreeOriginalAttrs(pizza_),
            (std::vector<AttrId>{0, 1, 2, 3, 4}));
}

TEST_F(FTreeTest, NodeOfAttr) {
  EXPECT_EQ(t_.NodeOfAttr(2), customer_);
  EXPECT_EQ(t_.NodeOfAttr(99), -1);
}

TEST_F(FTreeTest, AncestryQueries) {
  EXPECT_TRUE(t_.IsAncestor(pizza_, customer_));
  EXPECT_TRUE(t_.IsAncestor(date_, customer_));
  EXPECT_FALSE(t_.IsAncestor(customer_, date_));
  EXPECT_FALSE(t_.IsAncestor(date_, item_));
  EXPECT_EQ(t_.RootOf(price_), pizza_);
  EXPECT_EQ(t_.SlotOf(item_), 1);
  EXPECT_EQ(t_.SlotOf(pizza_), 0);  // root slot
}

TEST_F(FTreeTest, DependenceViaHyperedges) {
  EXPECT_TRUE(t_.NodesDependent(date_, customer_));   // Orders
  EXPECT_TRUE(t_.NodesDependent(pizza_, item_));      // Pizzas
  EXPECT_FALSE(t_.NodesDependent(date_, item_));      // independent branches
  EXPECT_FALSE(t_.NodesDependent(customer_, price_));
  EXPECT_TRUE(t_.SubtreeDependsOn(item_, pizza_));
  EXPECT_FALSE(t_.SubtreeDependsOn(item_, date_));
}

TEST_F(FTreeTest, PathConstraintHoldsOnT1) {
  EXPECT_TRUE(t_.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, PathConstraintViolation) {
  // Putting date and customer in sibling branches breaks the constraint,
  // since Orders makes them dependent (Prop. 1).
  FTree bad;
  int root = bad.AddNode({0}, -1);
  bad.AddNode({1}, root);
  bad.AddNode({2}, root);
  bad.AddEdge({{0, 1, 2}, 5.0, "Orders"});
  EXPECT_FALSE(bad.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, SwapUpBasic) {
  // Swap date with its parent pizza (χ_{pizza,date}): date becomes the
  // root; pizza keeps item (depends on pizza) and gains nothing from date's
  // children since customer depends on... customer depends on pizza via
  // Orders, so customer moves under pizza.
  std::vector<int> moved = t_.SwapUp(date_);
  EXPECT_EQ(t_.roots(), std::vector<int>{date_});
  EXPECT_EQ(t_.parent(pizza_), date_);
  // customer (child of date) depends on pizza via Orders → moved under pizza.
  EXPECT_EQ(moved.size(), 1u);
  EXPECT_EQ(t_.parent(customer_), pizza_);
  EXPECT_TRUE(t_.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, SwapUpIndependentChildrenStay) {
  // Swap item up: pizza's other child (date subtree) depends on pizza and
  // stays under pizza; price depends on item only and stays under item.
  t_.SwapUp(item_);
  EXPECT_EQ(t_.roots(), std::vector<int>{item_});
  EXPECT_EQ(t_.parent(pizza_), item_);
  EXPECT_EQ(t_.parent(price_), item_);
  EXPECT_EQ(t_.parent(date_), pizza_);
  EXPECT_TRUE(t_.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, SwapRootThrows) {
  EXPECT_THROW(t_.SwapUp(pizza_), std::invalid_argument);
}

TEST_F(FTreeTest, MergeSiblings) {
  FTree t;
  int r = t.AddNode({0}, -1);
  int a = t.AddNode({1}, r);
  int b = t.AddNode({2}, r);
  int ca = t.AddNode({3}, a);
  t.AddEdge({{0, 1, 3}, 3.0, "R1"});
  t.AddEdge({{0, 2}, 3.0, "R2"});
  t.MergeSiblings(a, b);
  EXPECT_FALSE(t.node(b).alive);
  EXPECT_EQ(t.node(a).attrs, (std::vector<AttrId>{1, 2}));
  EXPECT_EQ(t.children(r), std::vector<int>{a});
  EXPECT_EQ(t.parent(ca), a);
  EXPECT_EQ(t.NodeOfAttr(2), a);
}

TEST_F(FTreeTest, MergeNonSiblingsThrows) {
  EXPECT_THROW(t_.MergeSiblings(pizza_, customer_), std::invalid_argument);
}

TEST_F(FTreeTest, AbsorbDescendant) {
  // Absorb customer (descendant) into pizza (ancestor): customer's class
  // joins pizza's; customer dies; its children (none) splice into date.
  t_.AbsorbDescendant(pizza_, customer_);
  EXPECT_FALSE(t_.node(customer_).alive);
  EXPECT_EQ(t_.node(pizza_).attrs, (std::vector<AttrId>{0, 2}));
  EXPECT_TRUE(t_.children(date_).empty());
  EXPECT_EQ(t_.NodeOfAttr(2), pizza_);
}

TEST_F(FTreeTest, AbsorbNonDescendantThrows) {
  EXPECT_THROW(t_.AbsorbDescendant(date_, item_), std::invalid_argument);
}

TEST_F(FTreeTest, ReplaceSubtreeWithAggregates) {
  AggregateLabel sum;
  sum.fn = AggFn::kSum;
  sum.source = 4;
  sum.over = {3, 4};
  sum.id = 10;
  std::vector<int> ids = t_.ReplaceSubtreeWithAggregates(item_, {sum});
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_FALSE(t_.node(item_).alive);
  EXPECT_FALSE(t_.node(price_).alive);
  EXPECT_EQ(t_.parent(ids[0]), pizza_);
  EXPECT_EQ(t_.SlotOf(ids[0]), 1);  // takes item's slot
  EXPECT_EQ(t_.NodeOfAttr(10), ids[0]);
  // The Pizzas and Items edges merged into one covering pizza and sum(U).
  bool found = false;
  for (const Hyperedge& e : t_.edges()) {
    if (std::binary_search(e.attrs.begin(), e.attrs.end(), AttrId{10})) {
      found = true;
      EXPECT_TRUE(std::binary_search(e.attrs.begin(), e.attrs.end(),
                                     AttrId{0}));  // pizza
    }
  }
  EXPECT_TRUE(found);
  // The new aggregate node depends on pizza (its former dependency).
  EXPECT_TRUE(t_.NodesDependent(ids[0], pizza_));
  EXPECT_TRUE(t_.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, CompositeAggregatesAreMutuallyIndependent) {
  AggregateLabel sum, cnt;
  sum.fn = AggFn::kSum;
  sum.source = 4;
  sum.over = {3, 4};
  sum.id = 10;
  cnt.fn = AggFn::kCount;
  cnt.over = {3, 4};
  cnt.id = 11;
  std::vector<int> ids = t_.ReplaceSubtreeWithAggregates(item_, {sum, cnt});
  ASSERT_EQ(ids.size(), 2u);
  // Siblings under pizza, not dependent on each other.
  EXPECT_EQ(t_.parent(ids[0]), pizza_);
  EXPECT_EQ(t_.parent(ids[1]), pizza_);
  EXPECT_FALSE(t_.NodesDependent(ids[0], ids[1]));
  EXPECT_TRUE(t_.SatisfiesPathConstraint());
}

TEST_F(FTreeTest, RemoveLeaf) {
  t_.RemoveLeaf(customer_);
  EXPECT_FALSE(t_.node(customer_).alive);
  EXPECT_TRUE(t_.children(date_).empty());
  // Attr 2 disappeared from all edges.
  for (const Hyperedge& e : t_.edges()) {
    EXPECT_FALSE(std::binary_search(e.attrs.begin(), e.attrs.end(),
                                    AttrId{2}));
  }
}

TEST_F(FTreeTest, RemoveNonLeafThrows) {
  EXPECT_THROW(t_.RemoveLeaf(date_), std::invalid_argument);
}

TEST_F(FTreeTest, RenameAggregate) {
  AggregateLabel cnt;
  cnt.fn = AggFn::kCount;
  cnt.over = {3, 4};
  cnt.id = 10;
  int id = t_.ReplaceSubtreeWithAggregates(item_, {cnt})[0];
  t_.RenameAggregate(id, 20);
  EXPECT_EQ(t_.NodeOfAttr(20), id);
  EXPECT_EQ(t_.NodeOfAttr(10), -1);
}

TEST_F(FTreeTest, RenameAtomicThrows) {
  EXPECT_THROW(t_.RenameAggregate(pizza_, 20), std::invalid_argument);
}

TEST_F(FTreeTest, AddNodeEmptyClassThrows) {
  EXPECT_THROW(t_.AddNode({}, -1), std::invalid_argument);
}

TEST_F(FTreeTest, ToStringShowsStructure) {
  AttributeRegistry reg;
  reg.Intern("pizza");
  reg.Intern("date");
  reg.Intern("customer");
  reg.Intern("item");
  reg.Intern("price");
  std::string s = t_.ToString(reg);
  EXPECT_NE(s.find("pizza"), std::string::npos);
  EXPECT_NE(s.find("  date"), std::string::npos);
}

TEST_F(FTreeTest, ForestWithTwoRoots) {
  FTree f;
  int r1 = f.AddNode({0}, -1);
  int r2 = f.AddNode({1}, -1);
  EXPECT_EQ(f.roots(), (std::vector<int>{r1, r2}));
  EXPECT_EQ(f.SlotOf(r2), 1);
  EXPECT_TRUE(f.SatisfiesPathConstraint());
}

}  // namespace
}  // namespace fdb
