// ValueDict under concurrent interning and lock-free reads: exclusive
// intern path, shared-lock lookups, lock-free code→value resolution.
// Must run clean under TSan (ci tsan job).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fdb/relational/value_dict.h"

namespace fdb {
namespace {

TEST(DictConcurrencyTest, DisjointInternsGetUniqueCodes) {
  ValueDict dict;
  constexpr int kThreads = 4, kPer = 500;
  std::vector<std::vector<uint32_t>> codes(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        codes[t].push_back(
            dict.Intern("t" + std::to_string(t) + "_" + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::set<uint32_t> all;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPer; ++i) {
      EXPECT_TRUE(all.insert(codes[t][i]).second);
      // Round trip: the code resolves to exactly the interned string.
      EXPECT_EQ(dict.str(codes[t][i]),
                "t" + std::to_string(t) + "_" + std::to_string(i));
    }
  }
  EXPECT_EQ(dict.num_strings(), size_t{kThreads * kPer});
  // Ranks are a permutation consistent with string order.
  std::vector<uint32_t> by_rank(dict.num_strings());
  for (uint32_t c = 0; c < dict.num_strings(); ++c) {
    by_rank[dict.rank(c)] = c;
  }
  for (size_t r = 1; r < by_rank.size(); ++r) {
    EXPECT_LT(dict.str(by_rank[r - 1]), dict.str(by_rank[r]));
  }
}

TEST(DictConcurrencyTest, RacingInternsOfSameStringAgree) {
  ValueDict dict;
  constexpr int kThreads = 4, kStrings = 200;
  std::vector<std::vector<uint32_t>> codes(kThreads,
                                           std::vector<uint32_t>(kStrings));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kStrings; ++i) {
        codes[t][i] = dict.Intern("shared_" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(codes[t], codes[0]);
  EXPECT_EQ(dict.num_strings(), size_t{kStrings});
}

TEST(DictConcurrencyTest, LockFreeReadsDuringAppendOnlyInterning) {
  ValueDict dict;
  // Pre-load a sorted base so later interns append in rank order and
  // published ranks never shift.
  constexpr int kBase = 1000;
  std::vector<std::string> base;
  std::vector<std::string_view> views;
  for (int i = 0; i < kBase; ++i) {
    base.push_back("a" + std::to_string(1000 + i));  // sorted
  }
  for (const std::string& s : base) views.push_back(s);
  dict.InternBulk(std::move(views));

  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (uint32_t c = 0; c + 1 < kBase; ++c) {
          // Established codes keep resolving and stay rank-ordered while
          // the writer interns strictly larger strings.
          if (dict.str(c) != base[c]) ok.store(false);
          if (!(dict.rank(c) < dict.rank(c + 1))) ok.store(false);
        }
        if (!dict.Find(base[0]).has_value()) ok.store(false);
      }
    });
  }
  // Writer appends past the existing maximum: rank-append-only.
  for (int i = 0; i < 2000; ++i) {
    dict.Intern("b" + std::to_string(1000 + i));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(dict.num_strings(), size_t{kBase + 2000});
}

TEST(DictConcurrencyTest, ComparisonsConsistentDuringOutOfOrderInterns) {
  // Out-of-order interns shift the ranks of all larger strings; the
  // seqlock in CompareStringRanks must keep every concurrent pairwise
  // comparison correct throughout (the InsertTuple-vs-readers race).
  ValueDict dict;
  uint32_t lo = dict.Intern("aaa");
  uint32_t hi = dict.Intern("zzz");
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (dict.CompareStringRanks(lo, hi) != std::strong_ordering::less) {
          ok.store(false);
        }
        if (dict.CompareStringRanks(hi, lo) !=
            std::strong_ordering::greater) {
          ok.store(false);
        }
      }
    });
  }
  // Descending interns between "aaa" and "zzz": every one splices into
  // the middle of the rank order and shifts everything after it.
  for (int i = 3000; i > 0; --i) {
    dict.Intern("m" + std::to_string(100000 + i));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_LT(dict.rank(lo), dict.rank(hi));
}

TEST(DictConcurrencyTest, BigIntPoolConcurrent) {
  ValueDict dict;
  constexpr int64_t kBig = int64_t{1} << 50;
  constexpr int kThreads = 4, kPer = 300;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        int64_t v = kBig + i;  // heavy overlap across threads
        uint32_t slot = dict.InternBigInt(v);
        if (dict.big_int(slot) != v) ok.store(false);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(dict.num_big_ints(), size_t{kPer});
}

TEST(DictConcurrencyTest, EncodeDecodeAcrossThreads) {
  // Encode on one thread, decode the published refs on others — the
  // pattern of a parallel build handing nodes to enumeration workers.
  ValueDict dict;
  std::vector<ValueRef> refs;
  for (int i = 0; i < 500; ++i) {
    refs.push_back(dict.Encode(Value("s" + std::to_string(1000 + i))));
  }
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        Value v = dict.Decode(refs[i]);
        if (v.as_string() != "s" + std::to_string(1000 + i)) ok.store(false);
        if (dict.Compare(refs[i], refs[i]) != std::strong_ordering::equal) {
          ok.store(false);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace fdb
