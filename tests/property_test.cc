// The central correctness invariant of the reproduction: on random
// databases and a spread of query shapes, FDB (factorised evaluation, both
// planners) and RDB (flat evaluation, both grouping algorithms, naive and
// eager plans) must return identical results.

#include <gtest/gtest.h>

#include <random>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/query/parser.h"
#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::SameBag;

struct Instance {
  std::unique_ptr<Database> db;
  RandomDb rdb;
};

Instance MakeInstance(int seed, const std::string& prefix) {
  Instance inst;
  inst.db = std::make_unique<Database>();
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(seed);
  spec.num_relations = 2 + seed % 2;
  spec.arity = 2 + seed % 2;
  spec.rows = 20 + seed % 23;
  spec.domain = 3 + seed % 4;
  inst.rdb = GenerateChainDb(inst.db.get(), prefix + std::to_string(seed),
                             spec);
  return inst;
}

std::string FromList(const Instance& inst) {
  std::string s;
  for (size_t i = 0; i < inst.rdb.relation_names.size(); ++i) {
    if (i) s += ", ";
    s += inst.rdb.relation_names[i];
  }
  return s;
}

void ExpectAllEnginesAgree(Database* db, const std::string& sql,
                           bool fdb_order_check = false) {
  BoundQuery q = Bind(ParseSql(sql), db);
  FdbEngine fdb(db);
  RdbEngine rdb(db);

  RdbResult reference = rdb.Execute(q);
  RdbOptions hash;
  hash.grouping = RdbOptions::Grouping::kHash;
  EXPECT_TRUE(SameBag(rdb.Execute(q, hash).flat, reference.flat,
                      db->registry()))
      << "sort vs hash grouping: " << sql;
  if (q.has_aggregates() && q.eq_selections.empty()) {
    RdbOptions eager;
    eager.eager = true;
    EXPECT_TRUE(SameBag(rdb.Execute(q, eager).flat, reference.flat,
                        db->registry()))
        << "eager vs lazy: " << sql;
  }

  FdbResult fr = fdb.Execute(q);
  EXPECT_TRUE(SameBag(fr.flat, reference.flat, db->registry()))
      << "FDB vs RDB: " << sql;
  if (fdb_order_check && !q.order_by.empty()) {
    EXPECT_TRUE(fr.flat.IsSortedBy(q.order_by)) << sql;
  }

  FdbOptions ex;
  ex.planner = FdbOptions::Planner::kExhaustive;
  ex.exhaustive_max_states = 3000;
  FdbResult fx = fdb.Execute(q, ex);
  EXPECT_TRUE(SameBag(fx.flat, reference.flat, db->registry()))
      << "FDB exhaustive vs RDB: " << sql;
}

class DifferentialProperty : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialProperty, GroupBySumPerFirstAttr) {
  Instance inst = MakeInstance(GetParam(), "pa");
  const std::string& g = inst.rdb.attr_names.front();
  const std::string& s = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(
      inst.db.get(), "SELECT " + g + ", sum(" + s + ") FROM " +
                         FromList(inst) + " GROUP BY " + g);
}

TEST_P(DifferentialProperty, GroupByMiddleAttrAllAggregates) {
  Instance inst = MakeInstance(GetParam(), "pb");
  const std::string& g =
      inst.rdb.attr_names[inst.rdb.attr_names.size() / 2];
  const std::string& s = inst.rdb.attr_names.front();
  ExpectAllEnginesAgree(
      inst.db.get(),
      "SELECT " + g + ", count(*), sum(" + s + "), min(" + s + "), max(" +
          s + "), avg(" + s + ") FROM " + FromList(inst) + " GROUP BY " + g);
}

TEST_P(DifferentialProperty, TwoGroupAttributesWithOrder) {
  Instance inst = MakeInstance(GetParam(), "pc");
  const std::string& g1 = inst.rdb.attr_names.front();
  const std::string& g2 = inst.rdb.attr_names.back();
  const std::string& s = inst.rdb.attr_names[1];
  ExpectAllEnginesAgree(
      inst.db.get(),
      "SELECT " + g2 + ", " + g1 + ", sum(" + s + ") FROM " +
          FromList(inst) + " GROUP BY " + g2 + ", " + g1 + " ORDER BY " +
          g2 + " DESC, " + g1,
      /*fdb_order_check=*/true);
}

TEST_P(DifferentialProperty, GlobalAggregates) {
  Instance inst = MakeInstance(GetParam(), "pd");
  const std::string& s = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT count(*), sum(" + s + "), min(" + s +
                            ") FROM " + FromList(inst));
}

TEST_P(DifferentialProperty, ConstantSelections) {
  Instance inst = MakeInstance(GetParam(), "pe");
  const std::string& g = inst.rdb.attr_names.front();
  const std::string& s = inst.rdb.attr_names.back();
  const std::string& w = inst.rdb.attr_names[1];
  ExpectAllEnginesAgree(
      inst.db.get(), "SELECT " + g + ", count(*) FROM " + FromList(inst) +
                         " WHERE " + w + " >= 1 AND " + s + " < 3 GROUP BY " +
                         g);
}

TEST_P(DifferentialProperty, EqualitySelection) {
  Instance inst = MakeInstance(GetParam(), "pf");
  const std::string& a = inst.rdb.attr_names.front();
  const std::string& b = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT count(*) FROM " + FromList(inst) +
                            " WHERE " + a + " = " + b);
}

TEST_P(DifferentialProperty, DistinctProjection) {
  Instance inst = MakeInstance(GetParam(), "pg");
  const std::string& a = inst.rdb.attr_names.front();
  const std::string& b = inst.rdb.attr_names[inst.rdb.attr_names.size() / 2];
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT DISTINCT " + b + ", " + a + " FROM " +
                            FromList(inst));
}

TEST_P(DifferentialProperty, OrderByAggregateWithHavingAndLimit) {
  Instance inst = MakeInstance(GetParam(), "ph");
  const std::string& g = inst.rdb.attr_names.front();
  const std::string& s = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(
      inst.db.get(),
      "SELECT " + g + ", sum(" + s + ") AS s_out FROM " + FromList(inst) +
          " GROUP BY " + g +
          " HAVING count(*) > 1 ORDER BY s_out DESC, " + g + " LIMIT 5",
      /*fdb_order_check=*/true);
}

TEST_P(DifferentialProperty, SelectStarOrdered) {
  Instance inst = MakeInstance(GetParam(), "pi");
  const std::string& a = inst.rdb.attr_names[1];
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT * FROM " + FromList(inst) + " ORDER BY " +
                            a + " DESC",
                        /*fdb_order_check=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialProperty,
                         ::testing::Range(0, 14));

// Order check for SELECT * with the order attribute leading.
class OrderedStarProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrderedStarProperty, FdbOutputIsSorted) {
  Instance inst = MakeInstance(GetParam(), "pj");
  const std::string& a = inst.rdb.attr_names[1];
  const std::string& b = inst.rdb.attr_names.front();
  std::string sql = "SELECT * FROM " + FromList(inst) + " ORDER BY " + a +
                    ", " + b + " DESC";
  FdbEngine fdb(inst.db.get());
  FdbResult r = fdb.ExecuteSql(sql);
  EXPECT_TRUE(
      r.flat.IsSortedBy({{*inst.db->registry().Find(a), SortDir::kAsc},
                         {*inst.db->registry().Find(b), SortDir::kDesc}}))
      << sql;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedStarProperty, ::testing::Range(0, 8));

// Star-schema joins produce *branching* f-trees (satellites independent
// given the hub) — the shape where factorisation pays off most. The same
// differential invariants must hold there.
struct StarInstance {
  std::unique_ptr<Database> db;
  RandomDb rdb;
};

StarInstance MakeStarInstance(int seed, const std::string& prefix) {
  StarInstance inst;
  inst.db = std::make_unique<Database>();
  RandomDbSpec spec;
  spec.seed = static_cast<uint64_t>(seed);
  spec.num_relations = 3 + seed % 2;
  spec.arity = 2 + seed % 2;
  spec.rows = 15 + seed % 20;
  spec.domain = 3 + seed % 3;
  inst.rdb = GenerateStarDb(inst.db.get(), prefix + std::to_string(seed),
                            spec);
  return inst;
}

class StarDifferential : public ::testing::TestWithParam<int> {};

TEST_P(StarDifferential, AggregatesAgree) {
  StarInstance inst = MakeStarInstance(GetParam(), "st");
  std::string from;
  for (size_t i = 0; i < inst.rdb.relation_names.size(); ++i) {
    if (i) from += ", ";
    from += inst.rdb.relation_names[i];
  }
  const std::string& g = inst.rdb.attr_names[0];  // a spoke attribute
  const std::string& s = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT " + g + ", count(*), sum(" + s + "), min(" +
                            s + ") FROM " + from + " GROUP BY " + g);
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT count(*), sum(" + s + ") FROM " + from);
}

TEST_P(StarDifferential, BranchingTreeIsChosen) {
  StarInstance inst = MakeStarInstance(GetParam(), "sb");
  std::vector<const Relation*> rels;
  for (const std::string& name : inst.rdb.relation_names) {
    rels.push_back(inst.db->relation(name));
  }
  FTree tree = ChooseFTree(rels);
  EXPECT_TRUE(tree.SatisfiesPathConstraint());
  // At least one node has two or more children (satellites branch off).
  bool branching = false;
  for (int n : tree.TopologicalOrder()) {
    if (tree.children(n).size() >= 2) branching = true;
  }
  EXPECT_TRUE(branching) << "star schema should yield a branching f-tree";
}

TEST_P(StarDifferential, DistinctProjectionAndOrderAgree) {
  StarInstance inst = MakeStarInstance(GetParam(), "sc");
  std::string from;
  for (size_t i = 0; i < inst.rdb.relation_names.size(); ++i) {
    if (i) from += ", ";
    from += inst.rdb.relation_names[i];
  }
  const std::string& a = inst.rdb.attr_names[0];
  const std::string& b = inst.rdb.attr_names.back();
  ExpectAllEnginesAgree(inst.db.get(),
                        "SELECT DISTINCT " + a + ", " + b + " FROM " + from +
                            " ORDER BY " + a + " DESC, " + b,
                        /*fdb_order_check=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarDifferential, ::testing::Range(0, 10));

}  // namespace
}  // namespace fdb
