#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/update.h"
#include "fdb/engine/database.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

Factorisation MakePathView(Database* db, const std::string& prefix,
                           int64_t rows) {
  AttrId a = db->Attr(prefix + "_a"), b = db->Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x), Value(x * 2)});
  return FactoriseRelation(r, {a, b});
}

TEST(CompactTest, CompactPreservesDataAndDropsGarbage) {
  Database db;
  Factorisation f = MakePathView(&db, "cpd", 30);
  Relation before = f.Flatten();
  // Persistent updates leave dead path copies behind.
  for (int64_t i = 0; i < 50; ++i) {
    InsertTuple(&f, Row({500 + i, 1}));
    DeleteTuple(&f, Row({500 + i, 1}));
  }
  int64_t dirty = f.arena()->bytes_used();
  f.Compact();
  EXPECT_LT(f.arena()->bytes_used(), dirty);
  EXPECT_TRUE(f.Validate());
  EXPECT_TRUE(testing::SameBag(f.Flatten(), before, db.registry()));
}

TEST(CompactTest, CompactPreservesDagSharing) {
  Database db;
  AttrId a = db.Attr("cps_a"), b = db.Attr("cps_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x : {1, 2, 3, 4}) {
    for (int64_t y : {10, 20, 30}) r.Add({Value(x), Value(y)});
  }
  Factorisation f = FactoriseRelation(r, {a, b});
  CompressInPlace(&f);
  int64_t stored = CountStoredSingletons(f);
  f.Compact();
  EXPECT_EQ(CountStoredSingletons(f), stored);
  EXPECT_EQ(f.roots()[0]->child(0, 1, 0), f.roots()[0]->child(1, 1, 0));
  EXPECT_EQ(f.CountTuples(), 12);
}

TEST(CompactTest, CompactHandlesEmptyRoots) {
  Database db;
  AttrId a = db.Attr("ce_a");
  FTree t;
  t.AddNode({a}, -1);
  Factorisation f(t, {MakeLeaf({})});
  f.Compact();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.CountTuples(), 0);
}

TEST(CompactTest, SharedArenasStayIntactAcrossCompaction) {
  Database db;
  Factorisation f = MakePathView(&db, "csh", 20);
  Factorisation copy = f;  // shares the arena
  InsertTuple(&f, Row({999, 999}));
  f.Compact();
  // The copy still reads the original arena (kept alive by its own ref).
  EXPECT_EQ(copy.CountTuples(), 20);
  EXPECT_EQ(f.CountTuples(), 21);
  EXPECT_TRUE(ContainsTuple(f, Row({999, 999})));
  EXPECT_FALSE(ContainsTuple(copy, Row({999, 999})));
}

TEST(CompactTest, EnumerationSurvivesCompactionMidStream) {
  // The enumerator pins the arena it started on, so updates that trigger
  // generational compaction (retiring that arena from the factorisation)
  // must not invalidate an enumeration in progress.
  Database db;
  Factorisation f = MakePathView(&db, "cen", 50);
  Enumerator e(f);
  Tuple row(static_cast<size_t>(e.schema().arity()));
  ASSERT_TRUE(e.Next());
  e.Fill(&row);
  // Mutate hard enough that MaybeCompact fires at least once, then force
  // one more compaction explicitly.
  for (int64_t i = 0; i < 3000; ++i) {
    InsertTuple(&f, Row({5000 + (i % 40), i}));
    DeleteTuple(&f, Row({5000 + (i % 40), i}));
  }
  f.Compact();
  int64_t produced = 1;
  while (e.Next()) {
    e.Fill(&row);  // reads the pinned pre-update version; UAF under ASan
    ++produced;
  }
  EXPECT_EQ(produced, 50);
  EXPECT_EQ(f.CountTuples(), 50);

  // Same guarantee when the first Next() happens only after updates have
  // already swapped the roots: the enumerator captured the roots at
  // construction, so it still walks (and keeps alive) that version.
  Enumerator e2(f);
  InsertTuple(&f, Row({123456, 1}));
  for (int64_t i = 0; i < 3000; ++i) {
    InsertTuple(&f, Row({7000 + (i % 40), i}));
    DeleteTuple(&f, Row({7000 + (i % 40), i}));
  }
  f.Compact();
  int64_t produced2 = 0;
  while (e2.Next()) {
    e2.Fill(&row);
    ++produced2;
  }
  EXPECT_EQ(produced2, 50);  // construction-time version: no 123456 row
  EXPECT_EQ(f.CountTuples(), 51);
}

TEST(CompactTest, SustainedUpdatesRunInBoundedMemory) {
  // The generational trigger in the update path keeps the arena within a
  // constant factor of the live size: without it this loop would retain
  // one dead root-to-leaf path copy per operation (tens of MB).
  Database db;
  Factorisation f = MakePathView(&db, "csu", 100);
  for (int64_t i = 0; i < 20000; ++i) {
    InsertTuple(&f, Row({100000 + (i % 50), i}));
    DeleteTuple(&f, Row({100000 + (i % 50), i}));
  }
  EXPECT_EQ(f.CountTuples(), 100);
  EXPECT_LT(f.arena()->bytes_used(), int64_t{2} << 20);
  EXPECT_TRUE(f.Validate());
}

}  // namespace
}  // namespace fdb
