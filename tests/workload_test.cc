#include "fdb/workload/generator.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/relational/rdb_ops.h"
#include "fdb/workload/random_db.h"

namespace fdb {
namespace {

TEST(GeneratorTest, SchemasMatchThePaper) {
  Database db;
  Workload w = GenerateWorkload(&db, SmallParams(1));
  EXPECT_EQ(w.orders.schema().arity(), 3);
  EXPECT_EQ(w.packages.schema().arity(), 2);
  EXPECT_EQ(w.items.schema().arity(), 2);
  EXPECT_EQ(db.registry().Name(w.orders.schema().attr(0)), "customer");
  EXPECT_EQ(db.registry().Name(w.packages.schema().attr(0)), "package");
  EXPECT_EQ(db.registry().Name(w.items.schema().attr(1)), "price");
}

TEST(GeneratorTest, DeterministicUnderSeed) {
  Database db1, db2;
  WorkloadParams p = SmallParams(2);
  p.seed = 99;
  Workload w1 = GenerateWorkload(&db1, p);
  Workload w2 = GenerateWorkload(&db2, p);
  EXPECT_TRUE(w1.orders.BagEquals(w2.orders));
  EXPECT_TRUE(w1.packages.BagEquals(w2.packages));
  EXPECT_TRUE(w1.items.BagEquals(w2.items));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  Database db1, db2;
  WorkloadParams p1 = SmallParams(1), p2 = SmallParams(1);
  p1.seed = 1;
  p2.seed = 2;
  EXPECT_FALSE(GenerateWorkload(&db1, p1)
                   .orders.BagEquals(GenerateWorkload(&db2, p2).orders));
}

TEST(GeneratorTest, SizesScaleRoughlyAsDocumented) {
  Database db;
  WorkloadParams p = SmallParams(4);
  Workload w = GenerateWorkload(&db, p);
  EXPECT_EQ(w.items.size(), p.num_items);
  // Each package holds items_per_package distinct items.
  EXPECT_EQ(w.packages.size(), int64_t{p.num_packages} * p.items_per_package);
  // |Orders| ≈ customers · dates · prob · orders_per_date (±40%).
  double expect = p.num_customers * p.num_dates * p.date_prob *
                  p.orders_per_date;
  EXPECT_GT(w.orders.size(), expect * 0.6);
  EXPECT_LT(w.orders.size(), expect * 1.4);
}

TEST(GeneratorTest, FTreeSatisfiesPathConstraint) {
  Database db;
  Workload w = GenerateWorkload(&db, SmallParams(1));
  EXPECT_TRUE(w.ftree.SatisfiesPathConstraint());
  // T: package root with two branches.
  ASSERT_EQ(w.ftree.roots().size(), 1u);
  EXPECT_EQ(w.ftree.children(w.ftree.roots()[0]).size(), 2u);
}

TEST(GeneratorTest, InstallWorkloadBuildsConsistentView) {
  Database db;
  WorkloadParams p = SmallParams(1);
  int64_t singletons = InstallWorkload(&db, p);
  ASSERT_NE(db.view("R1"), nullptr);
  ASSERT_NE(db.relation("Orders"), nullptr);
  EXPECT_EQ(db.view("R1")->CountSingletons(), singletons);
  // The view equals the flat join.
  Relation join = NaturalJoinAll({db.relation("Orders"),
                                  db.relation("Packages"),
                                  db.relation("Items")});
  EXPECT_EQ(db.view("R1")->CountTuples(), join.size());
  // Succinctness: the factorisation is smaller than the flat join's
  // singleton count (tuples × arity).
  EXPECT_LT(singletons, join.size() * 5);
}

TEST(GeneratorTest, SuccinctnessGapWidensWithScale) {
  // The ratio (flat join singletons) / (factorisation singletons) must grow
  // with the scale factor — the core premise of the evaluation (§6).
  double ratio[2];
  int idx = 0;
  for (int scale : {1, 4}) {
    Database db;
    WorkloadParams p = SmallParams(scale);
    int64_t singletons = InstallWorkload(&db, p);
    Relation join = NaturalJoinAll({db.relation("Orders"),
                                    db.relation("Packages"),
                                    db.relation("Items")});
    ratio[idx++] = static_cast<double>(join.size()) * 5 /
                   static_cast<double>(singletons);
  }
  EXPECT_GT(ratio[1], ratio[0] * 1.3)
      << "factorisation gap did not widen with scale";
}

TEST(RandomDbTest, ChainSharesBoundaryAttributes) {
  Database db;
  RandomDbSpec spec;
  spec.num_relations = 3;
  spec.arity = 3;
  RandomDb rdb = GenerateChainDb(&db, "w1", spec);
  ASSERT_EQ(rdb.relation_names.size(), 3u);
  const Relation* r0 = db.relation(rdb.relation_names[0]);
  const Relation* r1 = db.relation(rdb.relation_names[1]);
  int shared = 0;
  for (AttrId a : r0->schema().attrs()) {
    shared += r1->schema().Contains(a);
  }
  EXPECT_EQ(shared, 1);
}

TEST(RandomDbTest, PrefixIsolatesInstances) {
  Database db;
  RandomDbSpec spec;
  RandomDb a = GenerateChainDb(&db, "w2", spec);
  RandomDb b = GenerateChainDb(&db, "w3", spec);
  EXPECT_NE(a.relation_names[0], b.relation_names[0]);
  EXPECT_NE(a.attr_names[0], b.attr_names[0]);
}

TEST(RandomDbTest, TinyArityThrows) {
  Database db;
  RandomDbSpec spec;
  spec.arity = 1;
  EXPECT_THROW(GenerateChainDb(&db, "w4", spec), std::invalid_argument);
}

}  // namespace
}  // namespace fdb
