// Failure-injection tests for the persistence write path: an fsync,
// rename or torn write in the middle of a Save/Checkpoint must leave the
// previous snapshot + delta chain intact and reopenable — the atomic
// temp-write/rename publish means a failed attempt is invisible.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/storage/io_env.h"
#include "fdb/storage/snapshot.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FlattenCsv(const Factorisation& f, const AttributeRegistry& reg) {
  std::ostringstream out;
  WriteCsv(f.Flatten(), reg, out);
  return out.str();
}

bool Exists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

Database MakePathDb(int64_t rows, const std::string& prefix) {
  Database db;
  AttrId a = db.Attr(prefix + "_a"), b = db.Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x / 10), Value(x)});
  db.AddView("U", FactoriseRelation(r, {a, b}));
  return db;
}

class FailpointTest : public ::testing::Test {
 protected:
  ~FailpointTest() override {
    storage::IoEnv::Instance().ClearFailpoints();
  }
  storage::IoEnv& io_ = storage::IoEnv::Instance();
};

// Save over an existing good snapshot: whatever fails mid-write, the old
// file must survive byte-identically reopenable.
TEST_F(FailpointTest, FailedSaveKeepsThePreviousSnapshot) {
  const char* points[] = {"snapshot_fsync:1", "snapshot_rename:1",
                          "snapshot_write:2:short", "snapshot_write:3",
                          "dir_fsync:1"};
  int idx = 0;
  for (const char* point : points) {
    std::string path = TempPath("fp_save_" + std::to_string(idx++) + ".fdbs");
    Database db = MakePathDb(100, "fps");
    db.Save(path);
    std::string before = FlattenCsv(*db.view("U"), db.registry());

    InsertTuple(
        const_cast<Factorisation*>(db.view("U")), Row({999, 9999}));
    io_.SetFailpoints(point);
    EXPECT_THROW(db.Save(path), std::invalid_argument) << point;
    io_.ClearFailpoints();

    // Exception: dir_fsync fires after the rename — the new file may
    // legally be published by then, so "intact" means either version,
    // never a torn one. All earlier points must preserve the old bytes.
    Database re = Database::Open(path);
    std::string after = FlattenCsv(*re.view("U"), re.registry());
    if (std::string(point) == "dir_fsync:1") {
      EXPECT_TRUE(after == before ||
                  after == FlattenCsv(*db.view("U"), db.registry()))
          << point;
    } else {
      EXPECT_EQ(after, before) << point;
    }
    EXPECT_FALSE(Exists(path + ".tmp")) << point;  // temp cleaned up
  }
}

// A failed delta append leaves the chain (base + prior deltas) exactly
// as it was, and the next Checkpoint recovers with a fresh base.
TEST_F(FailpointTest, FailedCheckpointKeepsTheChainReopenable) {
  const char* points[] = {"snapshot_fsync:1", "snapshot_rename:1",
                          "snapshot_write:1:short"};
  int idx = 0;
  for (const char* point : points) {
    std::string path = TempPath("fp_ckpt_" + std::to_string(idx++) + ".fdbs");
    Database db = MakePathDb(100, "fpc");
    ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
    db.UpdateView("U", [](Factorisation* f) {
      InsertTuple(f, Row({500, 5000}));
    });
    ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
    std::string before = FlattenCsv(*db.view("U"), db.registry());

    db.UpdateView("U", [](Factorisation* f) {
      InsertTuple(f, Row({600, 6000}));
    });
    io_.SetFailpoints(point);
    EXPECT_THROW(db.Checkpoint(path), std::invalid_argument) << point;
    io_.ClearFailpoints();

    // The chain replays to the pre-failure state.
    Database re = Database::Open(path);
    EXPECT_EQ(FlattenCsv(*re.view("U"), re.registry()), before) << point;

    // The retained index was dropped: the next checkpoint re-bases and
    // captures everything.
    EXPECT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase)
        << point;
    Database re2 = Database::Open(path);
    EXPECT_TRUE(ContainsTuple(*re2.view("U"), Row({600, 6000}))) << point;
  }
}

// A fold (Save over a chain) that dies must not orphan the chain: the
// old base + deltas keep replaying.
TEST_F(FailpointTest, FailedFoldKeepsBaseAndDeltas) {
  std::string path = TempPath("fp_fold.fdbs");
  Database db = MakePathDb(100, "fpf");
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kBase);
  db.UpdateView("U", [](Factorisation* f) {
    InsertTuple(f, Row({700, 7000}));
  });
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  std::string before = FlattenCsv(*db.view("U"), db.registry());

  io_.SetFailpoints("snapshot_rename:1");
  EXPECT_THROW(db.Save(path), std::invalid_argument);
  io_.ClearFailpoints();

  EXPECT_TRUE(Exists(storage::DeltaPath(path, 1)));  // chain untouched
  Database re = Database::Open(path);
  EXPECT_EQ(FlattenCsv(*re.view("U"), re.registry()), before);
}

TEST_F(FailpointTest, BadFailpointSpecsAreRejected) {
  EXPECT_THROW(io_.SetFailpoints("nocolon"), std::invalid_argument);
  EXPECT_THROW(io_.SetFailpoints("site:0"), std::invalid_argument);
  EXPECT_THROW(io_.SetFailpoints("site:abc"), std::invalid_argument);
  EXPECT_THROW(io_.SetFailpoints("site:1:banana"), std::invalid_argument);
  io_.SetFailpoints("a:1,b:2:short,any:3:flip");  // valid grammar
  io_.ClearFailpoints();
}

TEST_F(FailpointTest, CountersTrackSites) {
  std::string path = TempPath("fp_counts.fdbs");
  Database db = MakePathDb(50, "fpn");
  io_.ResetCounts();
  db.Save(path);
  EXPECT_GT(io_.Count("snapshot_write"), 0u);
  EXPECT_EQ(io_.Count("snapshot_fsync"), 1u);  // one fsync per atomic publish
  EXPECT_EQ(io_.Count("snapshot_rename"), 1u);
  EXPECT_GT(io_.Count("any"), io_.Count("snapshot_write"));
}

}  // namespace
}  // namespace fdb
