// Edge cases and robustness of both engines: degenerate inputs, limits,
// selections that empty everything, ties, single-relation queries, views
// with equivalence classes, and the factorised-output variants.

#include <gtest/gtest.h>

#include "fdb/core/compress.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;
using testing::SameBag;

void ExpectAgree(Database* db, const std::string& sql) {
  FdbEngine fdb(db);
  RdbEngine rdb(db);
  EXPECT_TRUE(
      SameBag(fdb.ExecuteSql(sql).flat, rdb.ExecuteSql(sql).flat,
              db->registry()))
      << sql;
}

TEST(EngineEdgeTest, LimitZero) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  EXPECT_EQ(fdb.ExecuteSql("SELECT * FROM R LIMIT 0").flat.size(), 0);
  EXPECT_EQ(fdb.ExecuteSql("SELECT customer, sum(price) FROM R GROUP BY "
                           "customer LIMIT 0")
                .flat.size(),
            0);
}

TEST(EngineEdgeTest, LimitLargerThanResult) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  EXPECT_EQ(fdb.ExecuteSql("SELECT * FROM R LIMIT 9999").flat.size(), 13);
}

TEST(EngineEdgeTest, SingleRelationQueries) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(), "SELECT * FROM Items");
  ExpectAgree(p.db.get(), "SELECT item FROM Items WHERE price > 1");
  ExpectAgree(p.db.get(), "SELECT max(price), min(item) FROM Items");
  ExpectAgree(p.db.get(),
              "SELECT price, count(*) FROM Items GROUP BY price");
}

TEST(EngineEdgeTest, SelectionEmptiesEverything) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT pizza, count(*) FROM R WHERE price > 1000 GROUP BY "
              "pizza");
  ExpectAgree(p.db.get(), "SELECT * FROM R WHERE customer = 'Nobody'");
  ExpectAgree(p.db.get(),
              "SELECT count(*), sum(price), min(price), max(price) FROM R "
              "WHERE price > 1000");
}

TEST(EngineEdgeTest, ContradictorySelections) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT * FROM R WHERE price > 3 AND price < 2");
}

TEST(EngineEdgeTest, RedundantSelections) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT * FROM R WHERE price >= 1 AND price >= 1 AND "
              "pizza <> 'Nope'");
}

TEST(EngineEdgeTest, OrderByWithHeavyTies) {
  // All prices tie within groups; enumeration order must still be stable
  // and bag-equal across engines.
  Database db;
  Relation r = db.MakeRelation({"ta", "tb"},
                               {{1, 5}, {2, 5}, {3, 5}, {4, 5}, {5, 5}});
  db.AddRelation("T", std::move(r));
  ExpectAgree(&db, "SELECT * FROM T ORDER BY tb, ta");
  FdbEngine fdb(&db);
  FdbResult res = fdb.ExecuteSql("SELECT * FROM T ORDER BY tb DESC, ta");
  EXPECT_TRUE(res.flat.IsSortedBy({{*db.registry().Find("tb"),
                                    SortDir::kDesc},
                                   {*db.registry().Find("ta"),
                                    SortDir::kAsc}}));
}

TEST(EngineEdgeTest, DistinctOnDuplicateHeavyData) {
  Database db;
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({i % 3, i % 2});
  Relation r = db.MakeRelation({"da", "db_"}, rows);
  db.AddRelation("D", std::move(r));
  ExpectAgree(&db, "SELECT DISTINCT da FROM D");
  ExpectAgree(&db, "SELECT DISTINCT da, db_ FROM D ORDER BY db_ DESC, da");
}

TEST(EngineEdgeTest, GroupByEquatedAttributes) {
  // Group by an attribute that was merged with another by a selection.
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT customer, count(*) FROM R WHERE customer = date "
              "GROUP BY customer");
}

TEST(EngineEdgeTest, HavingRemovesAllGroups) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS rev FROM R GROUP BY customer "
      "HAVING rev > 10000");
  EXPECT_TRUE(r.flat.empty());
  ExpectAgree(p.db.get(),
              "SELECT customer, sum(price) AS rev FROM R GROUP BY customer "
              "HAVING rev > 10000");
}

TEST(EngineEdgeTest, HavingOnAvg) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT pizza, avg(price) FROM R GROUP BY pizza HAVING "
              "avg(price) < 3");
}

TEST(EngineEdgeTest, HavingPlusLimitAppliesAfterFilter) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  // Two customers pass (revenue 9 each is false; > 5 passes all three);
  // with LIMIT 2 only the first two by customer order remain.
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS rev FROM R GROUP BY customer "
      "HAVING rev > 5 LIMIT 2");
  ASSERT_EQ(r.flat.size(), 2);
  EXPECT_EQ(r.flat.rows()[0][0].as_string(), "Lucia");
  EXPECT_EQ(r.flat.rows()[1][0].as_string(), "Mario");
}

TEST(EngineEdgeTest, FactorisedOutputOfDistinctProjection) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbOptions fo;
  fo.factorised_output = true;
  FdbResult r = fdb.ExecuteSql("SELECT DISTINCT pizza, date FROM R", fo);
  ASSERT_TRUE(r.factorised.has_value());
  EXPECT_TRUE(r.factorised->Validate());
  EXPECT_EQ(r.factorised->CountTuples(), 4);
  // Only pizza and date survive in the output schema.
  EXPECT_EQ(r.factorised->OutputSchema().arity(), 2);
}

TEST(EngineEdgeTest, CompressedFactorisedOutput) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbOptions fo;
  fo.factorised_output = true;
  fo.compress_output = true;
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, pizza, sum(price) FROM R GROUP BY customer, pizza",
      fo);
  ASSERT_TRUE(r.factorised.has_value());
  EXPECT_EQ(r.result_singletons, CountStoredSingletons(*r.factorised));
  EXPECT_LE(r.result_singletons, r.factorised->CountSingletons());
}

TEST(EngineEdgeTest, RepeatedExecutionIsDeterministic) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  std::string sql =
      "SELECT customer, sum(price) AS rev FROM R GROUP BY customer";
  Relation first = fdb.ExecuteSql(sql).flat;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(first.BagEquals(fdb.ExecuteSql(sql).flat));
  }
}

TEST(EngineEdgeTest, ViewIsNotMutatedByQueries) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  int64_t before = p.db->view("R")->CountSingletons();
  fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R WHERE price > 1 GROUP BY "
      "customer ORDER BY customer DESC");
  EXPECT_EQ(p.db->view("R")->CountSingletons(), before);
  EXPECT_TRUE(p.db->view("R")->Validate());
}

TEST(EngineEdgeTest, GlobalAggregateWithHaving) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  // HAVING over a global aggregate keeps or drops the single row.
  FdbResult keep = fdb.ExecuteSql(
      "SELECT sum(price) AS s FROM R GROUP BY pizza HAVING s > 100");
  EXPECT_TRUE(keep.flat.empty());
  ExpectAgree(p.db.get(),
              "SELECT pizza, sum(price) AS s FROM R GROUP BY pizza "
              "HAVING s >= 8");
}

TEST(EngineEdgeTest, MinMaxOverStringsEndToEnd) {
  Pizzeria p = MakePizzeria();
  ExpectAgree(p.db.get(),
              "SELECT pizza, min(customer), max(customer) FROM R "
              "GROUP BY pizza");
}

TEST(EngineEdgeTest, CrossProductOfDisconnectedRelations) {
  // FROM r, s with no shared attributes: the f-tree is a forest of two
  // trees and the factorisation is their product (Def. 1).
  Database db;
  db.AddRelation("X", db.MakeRelation({"xa"}, {{1}, {2}, {3}}));
  db.AddRelation("Y", db.MakeRelation({"ya", "yb"}, {{7, 70}, {8, 80}}));
  ExpectAgree(&db, "SELECT * FROM X, Y");
  ExpectAgree(&db, "SELECT count(*) FROM X, Y");
  ExpectAgree(&db, "SELECT xa, sum(yb) FROM X, Y GROUP BY xa");
  FdbEngine fdb(&db);
  FdbResult r = fdb.ExecuteSql("SELECT count(*) FROM X, Y");
  EXPECT_EQ(r.flat.rows()[0][0].as_int(), 6);
  // The factorised product stores 3 + 4 singletons, not 6 × 3.
  FdbOptions fo;
  fo.factorised_output = true;
  FdbResult f = fdb.ExecuteSql("SELECT * FROM X, Y", fo);
  ASSERT_TRUE(f.factorised.has_value());
  EXPECT_EQ(f.factorised->CountSingletons(), 7);
}

TEST(EngineEdgeTest, CrossProductWithSelectionBridgingTrees) {
  // An equality selection across the two independent trees merges their
  // roots (the merge operator on forest roots).
  Database db;
  db.AddRelation("X2", db.MakeRelation({"x2a"}, {{1}, {2}, {3}}));
  db.AddRelation("Y2", db.MakeRelation({"y2a", "y2b"},
                                       {{2, 20}, {3, 30}, {4, 40}}));
  ExpectAgree(&db, "SELECT * FROM X2, Y2 WHERE x2a = y2a");
  ExpectAgree(&db,
              "SELECT x2a, sum(y2b) FROM X2, Y2 WHERE x2a = y2a GROUP BY "
              "x2a");
}

TEST(EngineEdgeTest, MixedTypeAggregates) {
  Database db;
  Relation r{RelSchema({db.Attr("mk"), db.Attr("mv")})};
  r.Add({Value(1), Value(2.5)});
  r.Add({Value(1), Value(2)});
  r.Add({Value(2), Value(1.25)});
  db.AddRelation("M", std::move(r));
  ExpectAgree(&db, "SELECT mk, sum(mv), avg(mv) FROM M GROUP BY mk");
  FdbEngine fdb(&db);
  FdbResult res =
      fdb.ExecuteSql("SELECT mk, sum(mv) FROM M GROUP BY mk");
  EXPECT_DOUBLE_EQ(res.flat.rows()[0][1].numeric(), 4.5);
}

}  // namespace
}  // namespace fdb
