#include "fdb/engine/fdb_engine.h"

#include <gtest/gtest.h>

#include "fdb/engine/rdb_engine.h"
#include "fdb/obs/trace.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameBag;

// Runs the same SQL through both engines and expects identical output
// relations (bag-equal; FDB's order, if any, is checked separately).
void ExpectEnginesAgree(Pizzeria& p, const std::string& sql,
                        const FdbOptions& fopt = {},
                        const RdbOptions& ropt = {}) {
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  FdbResult fr = fdb.ExecuteSql(sql, fopt);
  RdbResult rr = rdb.ExecuteSql(sql, ropt);
  EXPECT_TRUE(SameBag(fr.flat, rr.flat, p.db->registry())) << sql;
}

TEST(EngineTest, RevenuePerCustomerOnView) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer");
  ASSERT_EQ(r.flat.size(), 3);
  EXPECT_EQ(r.flat.rows()[0][0].as_string(), "Lucia");
  EXPECT_EQ(r.flat.rows()[0][1].as_int(), 9);
  EXPECT_EQ(r.flat.rows()[1][1].as_int(), 22);
  EXPECT_EQ(r.flat.rows()[2][1].as_int(), 9);
}

TEST(EngineTest, EnginesAgreeOnAggregates) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(p,
                     "SELECT pizza, date, customer, sum(price) FROM R "
                     "GROUP BY pizza, date, customer");
  ExpectEnginesAgree(p, "SELECT customer, sum(price) FROM R GROUP BY "
                        "customer");
  ExpectEnginesAgree(p, "SELECT date, pizza, sum(price) FROM R GROUP BY "
                        "date, pizza");
  ExpectEnginesAgree(p, "SELECT pizza, sum(price) FROM R GROUP BY pizza");
  ExpectEnginesAgree(p, "SELECT sum(price) FROM R");
}

TEST(EngineTest, EnginesAgreeOnFlatInputJoin) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(
      p, "SELECT customer, sum(price) FROM Orders, Pizzas, Items "
         "GROUP BY customer");
}

TEST(EngineTest, CountMinMaxAvg) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(p, "SELECT pizza, count(*) FROM R GROUP BY pizza");
  ExpectEnginesAgree(p, "SELECT pizza, min(price), max(price) FROM R "
                        "GROUP BY pizza");
  ExpectEnginesAgree(p, "SELECT customer, avg(price) FROM R GROUP BY "
                        "customer");
  ExpectEnginesAgree(p, "SELECT count(*) FROM R");
  ExpectEnginesAgree(p, "SELECT min(customer) FROM R");
}

TEST(EngineTest, OrderByGroupColumn) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer "
      "ORDER BY customer DESC");
  ASSERT_EQ(r.flat.size(), 3);
  EXPECT_EQ(r.flat.rows()[0][0].as_string(), "Pietro");
  EXPECT_EQ(r.flat.rows()[2][0].as_string(), "Lucia");
  ExpectEnginesAgree(p,
                     "SELECT customer, sum(price) AS revenue FROM R GROUP "
                     "BY customer ORDER BY customer DESC");
}

TEST(EngineTest, OrderByAggregateAlias) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer "
      "ORDER BY revenue DESC, customer");
  ASSERT_EQ(r.flat.size(), 3);
  EXPECT_EQ(r.flat.rows()[0][1].as_int(), 22);   // Mario first
  EXPECT_EQ(r.flat.rows()[1][0].as_string(), "Lucia");  // tie broken by name
  EXPECT_EQ(r.flat.rows()[2][0].as_string(), "Pietro");
}

TEST(EngineTest, ConstantSelections) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(p,
                     "SELECT customer, sum(price) FROM R WHERE price > 1 "
                     "GROUP BY customer");
  ExpectEnginesAgree(p,
                     "SELECT pizza, count(*) FROM R WHERE customer = "
                     "'Mario' GROUP BY pizza");
  ExpectEnginesAgree(p, "SELECT * FROM R WHERE pizza = 'Hawaii'");
}

TEST(EngineTest, EqualitySelectionAcrossBranches) {
  Pizzeria p = MakePizzeria();
  // Joins date with item: empty on this data but must not crash either
  // engine and must agree.
  ExpectEnginesAgree(p, "SELECT * FROM R WHERE date = item");
}

TEST(EngineTest, SelectStarAndProjection) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult all = fdb.ExecuteSql("SELECT * FROM R");
  EXPECT_EQ(all.flat.size(), 13);
  // Plain projections have set semantics in both engines.
  ExpectEnginesAgree(p, "SELECT customer FROM R");
  ExpectEnginesAgree(p, "SELECT DISTINCT pizza, item FROM R");
}

TEST(EngineTest, HavingFiltersGroups) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(p,
                     "SELECT customer, sum(price) AS revenue FROM R GROUP "
                     "BY customer HAVING revenue > 10");
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer "
      "HAVING revenue > 10");
  ASSERT_EQ(r.flat.size(), 1);
  EXPECT_EQ(r.flat.rows()[0][0].as_string(), "Mario");
}

TEST(EngineTest, LimitOnOrderedEnumeration) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql("SELECT * FROM R ORDER BY pizza LIMIT 3");
  EXPECT_EQ(r.flat.size(), 3);
  ExpectEnginesAgree(p, "SELECT * FROM R ORDER BY pizza, date, customer, "
                        "item, price LIMIT 3");
}

TEST(EngineTest, OrderedEnumerationIsSorted) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM R ORDER BY customer, pizza DESC");
  EXPECT_TRUE(r.flat.IsSortedBy({{p.attr("customer"), SortDir::kAsc},
                                 {p.attr("pizza"), SortDir::kDesc}}));
  EXPECT_EQ(r.flat.size(), 13);
}

TEST(EngineTest, FactorisedOutputModeReportsSingletons) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbOptions opt;
  opt.factorised_output = true;
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer", opt);
  ASSERT_TRUE(r.factorised.has_value());
  EXPECT_GT(r.result_singletons, 0);
  EXPECT_LT(r.result_singletons, 26);
  EXPECT_TRUE(r.factorised->Validate());
}

TEST(EngineTest, ExhaustivePlannerAgreesWithGreedy) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbOptions ex;
  ex.planner = FdbOptions::Planner::kExhaustive;
  FdbResult greedy = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer");
  FdbResult exhaustive = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer", ex);
  EXPECT_TRUE(exhaustive.used_exhaustive);
  EXPECT_TRUE(
      SameBag(greedy.flat, exhaustive.flat, p.db->registry()));
}

TEST(EngineTest, RdbHashAndSortGroupingAgree) {
  Pizzeria p = MakePizzeria();
  RdbEngine rdb(p.db.get());
  RdbOptions hash;
  hash.grouping = RdbOptions::Grouping::kHash;
  RdbResult rs = rdb.ExecuteSql(
      "SELECT pizza, sum(price) FROM R GROUP BY pizza");
  RdbResult rh = rdb.ExecuteSql(
      "SELECT pizza, sum(price) FROM R GROUP BY pizza", hash);
  EXPECT_TRUE(SameBag(rs.flat, rh.flat, p.db->registry()));
}

TEST(EngineTest, RdbEagerPlanAgrees) {
  Pizzeria p = MakePizzeria();
  RdbEngine rdb(p.db.get());
  RdbOptions eager;
  eager.eager = true;
  RdbResult naive = rdb.ExecuteSql(
      "SELECT customer, sum(price) FROM Orders, Pizzas, Items GROUP BY "
      "customer");
  RdbResult opt = rdb.ExecuteSql(
      "SELECT customer, sum(price) FROM Orders, Pizzas, Items GROUP BY "
      "customer",
      eager);
  EXPECT_TRUE(SameBag(naive.flat, opt.flat, p.db->registry()));
}

TEST(EngineTest, EmptyResultQueries) {
  Pizzeria p = MakePizzeria();
  ExpectEnginesAgree(p,
                     "SELECT customer, sum(price) FROM R WHERE price > 100 "
                     "GROUP BY customer");
  ExpectEnginesAgree(p, "SELECT count(*) FROM R WHERE price > 100");
}

TEST(EngineTest, UnknownRelationThrows) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  EXPECT_THROW(fdb.ExecuteSql("SELECT * FROM Nope"), std::invalid_argument);
}

TEST(EngineTest, ViewJoinedWithRelationThrows) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  EXPECT_THROW(fdb.ExecuteSql("SELECT * FROM R, Orders"),
               std::invalid_argument);
}

TEST(EngineTest, StatsArePopulatedOnRequest) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbOptions opt;
  opt.collect_stats = true;
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer", opt);
  EXPECT_FALSE(r.plan.empty());
  EXPECT_EQ(r.op_stats.size(), r.plan.size());
  EXPECT_GE(r.plan_seconds, 0.0);
  EXPECT_GT(r.result_singletons, 0);
  // Without the option, the walk is skipped entirely.
  FdbResult quiet = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer");
  EXPECT_TRUE(quiet.op_stats.empty());
}

// EXPLAIN ANALYZE golden shape: the trace exists, the report names every
// phase in order, carries the factorisation size stats, and the query
// itself still executes and returns its rows.
TEST(EngineTest, ExplainAnalyzeShape) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "EXPLAIN ANALYZE SELECT customer, sum(price) AS revenue FROM R "
      "GROUP BY customer");
  ASSERT_NE(r.trace, nullptr);
  ASSERT_EQ(r.flat.size(), 3);  // the query ran, not just the explain

  std::string report = obs::ExplainReport(*r.trace);
  // Phases appear in execution order.
  std::vector<std::string> phases = {"parse", "bind",      "input",
                                     "optimise", "ops",    "aggregate"};
  size_t pos = 0;
  for (const std::string& phase : phases) {
    size_t at = report.find(phase + ":", pos);
    ASSERT_NE(at, std::string::npos) << "missing phase '" << phase
                                     << "' in:\n" << report;
    pos = at;
  }
  // Factorisation stats on the input span (the paper's size gap).
  EXPECT_NE(report.find("unions="), std::string::npos) << report;
  EXPECT_NE(report.find("singletons="), std::string::npos) << report;
  EXPECT_NE(report.find("flat_values="), std::string::npos) << report;
  EXPECT_NE(report.find("compression="), std::string::npos) << report;
  EXPECT_NE(report.find("rows=3"), std::string::npos) << report;
  // Per-op child spans were reconstructed from the operator stats.
  EXPECT_EQ(r.op_stats.size(), r.plan.size());

  // The Chrome exporter emits a well-formed trace-event envelope.
  std::string chrome = r.trace->ToChromeJson();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  // Plain queries carry no trace.
  FdbResult quiet = fdb.ExecuteSql(
      "SELECT customer, sum(price) FROM R GROUP BY customer");
  EXPECT_EQ(quiet.trace, nullptr);
}

TEST(EngineTest, ExplainAnalyzeRdb) {
  Pizzeria p = MakePizzeria();
  RdbEngine rdb(p.db.get());
  RdbResult r = rdb.ExecuteSql(
      "EXPLAIN ANALYZE SELECT customer, sum(price) FROM R GROUP BY "
      "customer");
  ASSERT_NE(r.trace, nullptr);
  EXPECT_EQ(r.flat.size(), 3);
  std::string report = obs::ExplainReport(*r.trace);
  EXPECT_NE(report.find("materialise-inputs:"), std::string::npos) << report;
  EXPECT_NE(report.find("join:"), std::string::npos) << report;
  EXPECT_NE(report.find("aggregate:"), std::string::npos) << report;
}

}  // namespace
}  // namespace fdb
