#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/engine/database.h"
#include "fdb/storage/format.h"
#include "fdb/storage/snapshot.h"
#include "test_util.h"

namespace fdb {
namespace {

// A small but representative snapshot: strings, a DAG view, a flat
// relation, several value types.
std::string MakeSnapshotBytes() {
  Database db;
  AttrId a = db.Attr("cor_a"), b = db.Attr("cor_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x : {1, 2, 3}) {
    for (int64_t y : {10, 20}) r.Add({Value(x), Value(y)});
  }
  Factorisation f = FactoriseRelation(r, {a, b});
  CompressInPlace(&f);
  db.AddView("V", std::move(f));
  AttrId c = db.Attr("cor_c");
  Relation s{RelSchema({c})};
  s.Add({Value("corrupt test string")});
  s.Add({Value(2.75)});
  s.Add({Value()});
  db.AddRelation("S", std::move(s));
  return storage::SerialiseDatabase(db);
}

// Opening must either succeed or throw std::invalid_argument — never
// crash, hang, or surface another exception type. Materialises every
// view, where most of the bounds checks live.
enum class OpenResult { kOk, kRejected };

OpenResult TryOpen(const std::string& bytes) {
  try {
    Database db = Database::OpenSnapshot(
        storage::SnapshotMapping::FromBuffer(bytes.data(), bytes.size()));
    for (const std::string& name : db.ViewNames()) {
      const Factorisation* v = db.view(name);
      if (v != nullptr) v->CountTuples();
    }
    return OpenResult::kOk;
  } catch (const std::invalid_argument&) {
    return OpenResult::kRejected;
  }
}

TEST(StorageCorruptTest, IntactSnapshotOpens) {
  EXPECT_EQ(TryOpen(MakeSnapshotBytes()), OpenResult::kOk);
}

TEST(StorageCorruptTest, TruncationsAreRejected) {
  std::string good = MakeSnapshotBytes();
  // Every truncation changes file_size vs the header, or cuts the header
  // itself; all must throw.
  for (size_t len = 0; len < good.size(); len += 7) {
    EXPECT_EQ(TryOpen(good.substr(0, len)), OpenResult::kRejected)
        << "truncated to " << len << " of " << good.size();
  }
}

TEST(StorageCorruptTest, HeaderFieldCorruptionsAreRejected) {
  std::string good = MakeSnapshotBytes();

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_EQ(TryOpen(bad), OpenResult::kRejected);

  bad = good;
  uint32_t version = 99;
  std::memcpy(bad.data() + 8, &version, sizeof(version));
  EXPECT_EQ(TryOpen(bad), OpenResult::kRejected);

  bad = good;
  uint32_t endian = 0x04030201;
  std::memcpy(bad.data() + 12, &endian, sizeof(endian));
  EXPECT_EQ(TryOpen(bad), OpenResult::kRejected);

  bad = good;
  uint64_t size = good.size() + 1;
  std::memcpy(bad.data() + 16, &size, sizeof(size));
  EXPECT_EQ(TryOpen(bad), OpenResult::kRejected);

  // Section table entries start right after the 32-byte header; blow up
  // the first section's offset.
  bad = good;
  uint64_t offset = uint64_t{1} << 60;
  std::memcpy(bad.data() + 32 + 8, &offset, sizeof(offset));
  EXPECT_EQ(TryOpen(bad), OpenResult::kRejected);
}

TEST(StorageCorruptTest, ByteFlipFuzzNeverCrashes) {
  std::string good = MakeSnapshotBytes();
  std::mt19937 rng(20260730);
  std::uniform_int_distribution<size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  int rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string bad = good;
    bad[pos(rng)] ^= static_cast<char>(1 << bit(rng));
    if (TryOpen(bad) == OpenResult::kRejected) ++rejected;
  }
  // Most flips land in load-bearing bytes; some (value payloads, edge
  // weights, names) legitimately still parse.
  EXPECT_GT(rejected, 0);
}

TEST(StorageCorruptTest, MissingFileThrows) {
  EXPECT_THROW(Database::Open("/nonexistent/fdb.fdbs"), std::invalid_argument);
}

TEST(StorageCorruptTest, EmptyBufferThrows) {
  EXPECT_EQ(TryOpen(std::string()), OpenResult::kRejected);
}

}  // namespace
}  // namespace fdb
