#include "fdb/relational/relation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

class RelationTest : public ::testing::Test {
 protected:
  RelationTest() {
    a_ = reg_.Intern("a");
    b_ = reg_.Intern("b");
    c_ = reg_.Intern("c");
  }

  Relation Make(std::vector<std::vector<int64_t>> rows) {
    Relation r{RelSchema({a_, b_, c_})};
    for (auto& row : rows) r.Add(Row(row));
    return r;
  }

  AttributeRegistry reg_;
  AttrId a_, b_, c_;
};

TEST_F(RelationTest, SchemaIndexOf) {
  RelSchema s({a_, b_, c_});
  EXPECT_EQ(s.IndexOf(a_), 0);
  EXPECT_EQ(s.IndexOf(c_), 2);
  EXPECT_EQ(s.IndexOf(static_cast<AttrId>(99)), -1);
  EXPECT_TRUE(s.Contains(b_));
}

TEST_F(RelationTest, RegistryInternIsIdempotent) {
  EXPECT_EQ(reg_.Intern("a"), a_);
  EXPECT_EQ(reg_.Name(a_), "a");
  EXPECT_FALSE(reg_.Find("nope").has_value());
}

TEST_F(RelationTest, SortByAscending) {
  Relation r = Make({{3, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  r.SortBy({{a_, SortDir::kAsc}});
  EXPECT_EQ(r.rows()[0][0].as_int(), 1);
  EXPECT_EQ(r.rows()[2][0].as_int(), 3);
  EXPECT_TRUE(r.IsSortedBy({{a_, SortDir::kAsc}}));
}

TEST_F(RelationTest, SortByDescending) {
  Relation r = Make({{3, 1, 0}, {1, 2, 0}, {2, 0, 0}});
  r.SortBy({{a_, SortDir::kDesc}});
  EXPECT_EQ(r.rows()[0][0].as_int(), 3);
  EXPECT_TRUE(r.IsSortedBy({{a_, SortDir::kDesc}}));
  EXPECT_FALSE(r.IsSortedBy({{a_, SortDir::kAsc}}));
}

TEST_F(RelationTest, SortByLexicographicTwoKeys) {
  Relation r = Make({{1, 2, 9}, {1, 1, 8}, {0, 5, 7}});
  r.SortBy({{a_, SortDir::kAsc}, {b_, SortDir::kDesc}});
  EXPECT_EQ(r.rows()[0][0].as_int(), 0);
  EXPECT_EQ(r.rows()[1][1].as_int(), 2);  // within a=1, b descending
  EXPECT_EQ(r.rows()[2][1].as_int(), 1);
}

TEST_F(RelationTest, SortIsStable) {
  Relation r = Make({{1, 9, 1}, {1, 8, 2}, {1, 7, 3}});
  r.SortBy({{a_, SortDir::kAsc}});
  // Equal keys keep input order.
  EXPECT_EQ(r.rows()[0][1].as_int(), 9);
  EXPECT_EQ(r.rows()[2][1].as_int(), 7);
}

TEST_F(RelationTest, SortAndDedup) {
  Relation r = Make({{1, 1, 1}, {1, 1, 1}, {0, 0, 0}});
  r.SortAndDedup();
  EXPECT_EQ(r.size(), 2);
}

TEST_F(RelationTest, SetEqualsIgnoresDuplicatesAndOrder) {
  Relation r1 = Make({{1, 1, 1}, {2, 2, 2}, {1, 1, 1}});
  Relation r2 = Make({{2, 2, 2}, {1, 1, 1}});
  EXPECT_TRUE(r1.SetEquals(r2));
  EXPECT_FALSE(r1.BagEquals(r2));
}

TEST_F(RelationTest, BagEqualsCountsMultiplicity) {
  Relation r1 = Make({{1, 1, 1}, {1, 1, 1}});
  Relation r2 = Make({{1, 1, 1}, {1, 1, 1}});
  EXPECT_TRUE(r1.BagEquals(r2));
}

TEST_F(RelationTest, SchemaMismatchNotEqual) {
  Relation r1 = Make({{1, 1, 1}});
  Relation r2{RelSchema({a_, c_, b_})};
  r2.Add(Row({1, 1, 1}));
  EXPECT_FALSE(r1.SetEquals(r2));
}

TEST_F(RelationTest, ResolveKeysUnknownAttrThrows) {
  Relation r = Make({{1, 2, 3}});
  EXPECT_THROW(r.SortBy({{static_cast<AttrId>(999), SortDir::kAsc}}),
               std::invalid_argument);
}

TEST_F(RelationTest, CompareTuplesRespectsDirections) {
  Tuple x = Row({1, 5, 0});
  Tuple y = Row({1, 3, 0});
  std::vector<std::pair<int, SortDir>> keys = {{0, SortDir::kAsc},
                                               {1, SortDir::kDesc}};
  EXPECT_LT(CompareTuples(x, y, keys), 0);  // 5 before 3 under DESC
  EXPECT_EQ(CompareTuples(x, x, keys), 0);
}

TEST_F(RelationTest, ToStringShowsRowsAndTruncates) {
  Relation r = Make({{1, 2, 3}, {4, 5, 6}});
  std::string s = r.ToString(reg_, 1);
  EXPECT_NE(s.find("2 rows"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST_F(RelationTest, EmptyRelation) {
  Relation r{RelSchema({a_})};
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.IsSortedBy({{a_, SortDir::kAsc}}));
  EXPECT_EQ(r.size(), 0);
}

}  // namespace
}  // namespace fdb
