// Parallel FactoriseJoin must be indistinguishable from the serial build:
// same Flatten bytes, same singleton counts, same compression behaviour,
// for every thread count.

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/compress.h"
#include "fdb/exec/task_pool.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

// Runs fn with the default pool resized to `threads`, restoring it after.
template <typename Fn>
auto WithThreads(int threads, Fn fn) {
  int before = exec::TaskPool::Default().num_threads();
  exec::TaskPool::SetDefaultThreads(threads);
  auto restore = [&] { exec::TaskPool::SetDefaultThreads(before); };
  try {
    auto out = fn();
    restore();
    return out;
  } catch (...) {
    restore();
    throw;
  }
}

// The §6 workload's join, factorised at a given thread count.
Factorisation BuildWorkload(Database* db, int threads, int scale = 1) {
  Workload w = GenerateWorkload(db, SmallParams(scale));
  return WithThreads(threads, [&] {
    return FactoriseJoin(w.ftree, {&w.orders, &w.packages, &w.items});
  });
}

TEST(ParallelBuildTest, FlattenByteIdenticalOnWorkload) {
  Database db1, db4;
  Factorisation serial = BuildWorkload(&db1, 1);
  Factorisation parallel = BuildWorkload(&db4, 4);
  ASSERT_TRUE(parallel.Validate());
  EXPECT_EQ(serial.CountSingletons(), parallel.CountSingletons());
  EXPECT_EQ(serial.CountTuples(), parallel.CountTuples());
  Relation a = serial.Flatten();
  Relation b = parallel.Flatten();
  EXPECT_EQ(a.schema().attrs(), b.schema().attrs());
  // Byte-identical: same rows in the same order.
  EXPECT_EQ(a.rows(), b.rows());
}

TEST(ParallelBuildTest, DeterministicAcrossThreadCounts) {
  Database ref_db;
  Relation ref = BuildWorkload(&ref_db, 1, 2).Flatten();
  int64_t ref_singletons = 0;
  {
    Database db;
    ref_singletons = BuildWorkload(&db, 1, 2).CountSingletons();
  }
  for (int threads : {2, 3, 4, 8}) {
    Database db;
    Factorisation f = BuildWorkload(&db, threads, 2);
    EXPECT_EQ(f.CountSingletons(), ref_singletons) << threads;
    EXPECT_EQ(f.Flatten().rows(), ref.rows()) << threads;
  }
}

TEST(ParallelBuildTest, PizzeriaStringsParallel) {
  // String-valued unions: dictionary codes are interned during Prepare
  // (before workers fork), so parallel builds see identical ranks. (The
  // pizzeria itself sits below the parallel-build row gate — it also
  // checks that tiny builds stay correct at any pool width.)
  Pizzeria serial = MakePizzeria();
  Pizzeria parallel = WithThreads(4, [] { return MakePizzeria(); });
  EXPECT_EQ(serial.view().CountSingletons(),
            parallel.view().CountSingletons());
  EXPECT_EQ(serial.view().Flatten().rows(), parallel.view().Flatten().rows());
  EXPECT_TRUE(parallel.view().Validate());
}

TEST(ParallelBuildTest, LargeStringTrieParallel) {
  // A string-keyed trie big enough to clear the parallel-build row gate:
  // the root union's candidates are string codes compared by rank.
  Database db;
  AttrId a = db.Attr("pbs_a"), b = db.Attr("pbs_b");
  Relation r{RelSchema({a, b})};
  for (int i = 0; i < 1200; ++i) {
    r.Add({Value("key" + std::to_string(10000 + i / 3)),
           Value("val" + std::to_string(10000 + i))});
  }
  db.AddRelation("S", r);  // bulk-interns the strings in sorted order
  Factorisation serial = FactoriseRelation(r, {a, b});
  Factorisation parallel =
      WithThreads(4, [&] { return FactoriseRelation(r, {a, b}); });
  EXPECT_EQ(serial.CountSingletons(), parallel.CountSingletons());
  EXPECT_EQ(serial.Flatten().rows(), parallel.Flatten().rows());
  EXPECT_TRUE(parallel.Validate());
}

TEST(ParallelBuildTest, CompressionSharingPreserved) {
  // d-graph sharing after CompressInPlace depends only on the built
  // structure: a parallel build must compress exactly as far.
  Database db1, db4;
  Factorisation serial = BuildWorkload(&db1, 1);
  Factorisation parallel = BuildWorkload(&db4, 4);
  CompressInPlace(&serial);
  CompressInPlace(&parallel);
  EXPECT_EQ(CountStoredSingletons(serial), CountStoredSingletons(parallel));
  EXPECT_EQ(serial.Flatten().rows(), parallel.Flatten().rows());
}

TEST(ParallelBuildTest, EmptyJoinNormalisesInParallel) {
  Database db;
  AttrId a = db.Attr("pbe_a"), b = db.Attr("pbe_b");
  Relation r{RelSchema({a})}, s{RelSchema({a, b})};
  // Big enough to clear the parallel-build row gate.
  for (int64_t i = 0; i < 300; ++i) r.Add({Value(i)});
  for (int64_t i = 1000; i < 1300; ++i) s.Add({Value(i), Value(i)});
  FTree tree;
  int na = tree.AddNode({a}, -1);
  tree.AddNode({b}, na);
  tree.AddEdge({{a}, 100.0, "R"});
  std::vector<AttrId> sab{a, b};
  std::sort(sab.begin(), sab.end());
  tree.AddEdge({sab, 100.0, "S"});
  Factorisation f = WithThreads(4, [&] {
    return FactoriseJoin(tree, {&r, &s});
  });
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.Validate());
  EXPECT_EQ(f.CountTuples(), 0);
}

TEST(ParallelBuildTest, WorkerArenasKeepResultAliveAfterBuilder) {
  // Subtrees live in adopted worker arenas; the factorisation must keep
  // them reachable through its own arena chain alone.
  Database db;
  Factorisation f = BuildWorkload(&db, 4);
  Relation before = f.Flatten();
  // Nothing else references the worker arenas now; enumerate again.
  EXPECT_EQ(f.Flatten().rows(), before.rows());
  EXPECT_GT(f.CountSingletons(), 0);
}

}  // namespace
}  // namespace fdb
