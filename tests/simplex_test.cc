#include "fdb/optimizer/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fdb {
namespace {

TEST(SimplexTest, SingleVariableCover) {
  // min x s.t. x >= 1.
  auto sol = SolveCoveringLp({{1.0}}, {1.0}, {1.0});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 1.0, 1e-6);
  EXPECT_NEAR(sol->x[0], 1.0, 1e-6);
}

TEST(SimplexTest, PicksCheaperCoveringEdge) {
  // Two edges cover the single constraint; the cheaper one wins.
  auto sol = SolveCoveringLp({{1.0, 1.0}}, {1.0}, {5.0, 2.0});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 2.0, 1e-6);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-6);
}

TEST(SimplexTest, TriangleQueryFractionalCoverIsThreeHalves) {
  // The classic triangle: three attributes, three binary edges, each edge
  // covering two attributes. Optimal fractional cover: ½ each → 1.5.
  std::vector<std::vector<double>> a = {
      {1, 1, 0},  // attr A covered by e1, e2
      {1, 0, 1},  // attr B covered by e1, e3
      {0, 1, 1},  // attr C covered by e2, e3
  };
  auto sol = SolveCoveringLp(a, {1, 1, 1}, {1, 1, 1});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 1.5, 1e-6);
}

TEST(SimplexTest, WeightedTriangleShiftsMass) {
  // Make edge 3 expensive: cover with e1 = e2 = 1 instead (cost 2 < 1+M).
  std::vector<std::vector<double>> a = {
      {1, 1, 0},
      {1, 0, 1},
      {0, 1, 1},
  };
  auto sol = SolveCoveringLp(a, {1, 1, 1}, {1, 1, 100});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 2.0, 1e-6);
  EXPECT_NEAR(sol->x[2], 0.0, 1e-6);
}

TEST(SimplexTest, PathQueryIntegralCover) {
  // Chain A–B–C with edges {A,B}, {B,C}: both must be taken to cover A and
  // C → objective 2.
  std::vector<std::vector<double>> a = {
      {1, 0},  // A
      {1, 1},  // B
      {0, 1},  // C
  };
  auto sol = SolveCoveringLp(a, {1, 1, 1}, {1, 1});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 2.0, 1e-6);
}

TEST(SimplexTest, InfeasibleWhenAttributeUncovered) {
  // Second row has no covering edge.
  auto sol = SolveCoveringLp({{1.0}, {0.0}}, {1.0, 1.0}, {1.0});
  EXPECT_FALSE(sol.has_value());
}

TEST(SimplexTest, EmptyProgramIsZero) {
  auto sol = SolveCoveringLp({}, {}, {1.0, 2.0});
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->objective, 0.0);
}

TEST(SimplexTest, ZeroCostEdgesStillCover) {
  auto sol = SolveCoveringLp({{1.0, 0.0}, {0.0, 1.0}}, {1.0, 1.0},
                             {0.0, 0.0});
  ASSERT_TRUE(sol.has_value());
  EXPECT_NEAR(sol->objective, 0.0, 1e-9);
  EXPECT_GE(sol->x[0], 1.0 - 1e-6);
}

TEST(SimplexTest, MismatchedSizesThrow) {
  EXPECT_THROW(SolveCoveringLp({{1.0}}, {1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(SolveCoveringLp({{1.0, 2.0}}, {1.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(SolveCoveringLp({{1.0}}, {-1.0}, {1.0}),
               std::invalid_argument);
}

TEST(SimplexTest, LargerRandomisedCoverSanity) {
  // 6 constraints, 4 edges with staggered coverage; optimum must cover all
  // rows: verify feasibility of the returned solution.
  std::vector<std::vector<double>> a = {
      {1, 0, 0, 1}, {1, 1, 0, 0}, {0, 1, 1, 0},
      {0, 0, 1, 1}, {1, 0, 1, 0}, {0, 1, 0, 1},
  };
  std::vector<double> c = {3.0, 1.0, 2.0, 1.5};
  auto sol = SolveCoveringLp(a, std::vector<double>(6, 1.0), c);
  ASSERT_TRUE(sol.has_value());
  for (size_t row = 0; row < a.size(); ++row) {
    double cover = 0;
    for (size_t e = 0; e < c.size(); ++e) cover += a[row][e] * sol->x[e];
    EXPECT_GE(cover, 1.0 - 1e-6) << "row " << row << " uncovered";
  }
  double obj = 0;
  for (size_t e = 0; e < c.size(); ++e) obj += c[e] * sol->x[e];
  EXPECT_NEAR(obj, sol->objective, 1e-9);
}

}  // namespace
}  // namespace fdb
