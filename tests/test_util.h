#ifndef FDB_TESTS_TEST_UTIL_H_
#define FDB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/factorisation.h"
#include "fdb/engine/database.h"
#include "fdb/relational/rdb_ops.h"

namespace fdb {
namespace testing {

/// The running example of the paper (Figure 1): the pizzeria database and
/// the factorised view R = Orders ⋈ Pizzas ⋈ Items over the f-tree T1
/// (pizza → {date → customer, item → price}).
struct Pizzeria {
  std::unique_ptr<Database> db;
  // Node ids of T1 inside the view's tree.
  int n_pizza, n_date, n_customer, n_item, n_price;

  const Factorisation& view() const { return *db->view("R"); }
  AttrId attr(const std::string& name) {
    return *db->registry().Find(name);
  }
};

inline Pizzeria MakePizzeria() {
  Pizzeria p;
  p.db = std::make_unique<Database>();
  AttributeRegistry& reg = p.db->registry();
  AttrId customer = reg.Intern("customer");
  AttrId date = reg.Intern("date");
  AttrId pizza = reg.Intern("pizza");
  AttrId item = reg.Intern("item");
  AttrId price = reg.Intern("price");

  Relation orders{RelSchema({customer, date, pizza})};
  orders.Add({Value("Mario"), Value("Monday"), Value("Capricciosa")});
  orders.Add({Value("Mario"), Value("Tuesday"), Value("Margherita")});
  orders.Add({Value("Pietro"), Value("Friday"), Value("Hawaii")});
  orders.Add({Value("Lucia"), Value("Friday"), Value("Hawaii")});
  orders.Add({Value("Mario"), Value("Friday"), Value("Capricciosa")});

  Relation pizzas{RelSchema({pizza, item})};
  pizzas.Add({Value("Margherita"), Value("base")});
  pizzas.Add({Value("Capricciosa"), Value("base")});
  pizzas.Add({Value("Capricciosa"), Value("ham")});
  pizzas.Add({Value("Capricciosa"), Value("mushrooms")});
  pizzas.Add({Value("Hawaii"), Value("base")});
  pizzas.Add({Value("Hawaii"), Value("ham")});
  pizzas.Add({Value("Hawaii"), Value("pineapple")});

  Relation items{RelSchema({item, price})};
  items.Add({Value("base"), Value(int64_t{6})});
  items.Add({Value("ham"), Value(int64_t{1})});
  items.Add({Value("mushrooms"), Value(int64_t{1})});
  items.Add({Value("pineapple"), Value(int64_t{2})});

  FTree t1;
  p.n_pizza = t1.AddNode({pizza}, -1);
  p.n_date = t1.AddNode({date}, p.n_pizza);
  p.n_customer = t1.AddNode({customer}, p.n_date);
  p.n_item = t1.AddNode({item}, p.n_pizza);
  p.n_price = t1.AddNode({price}, p.n_item);
  t1.AddEdge({{customer, date, pizza}, 5.0, "Orders"});
  t1.AddEdge({{pizza, item}, 7.0, "Pizzas"});
  t1.AddEdge({{item, price}, 4.0, "Items"});

  Factorisation r = FactoriseJoin(t1, {&orders, &pizzas, &items});
  p.db->AddRelation("Orders", std::move(orders));
  p.db->AddRelation("Pizzas", std::move(pizzas));
  p.db->AddRelation("Items", std::move(items));
  p.db->AddView("R", std::move(r));
  return p;
}

/// Compares two relations as sets after projecting both to `cols`
/// (column-order independent), with a readable failure message.
inline ::testing::AssertionResult SameSet(const Relation& a,
                                          const Relation& b,
                                          const std::vector<AttrId>& cols,
                                          const AttributeRegistry& reg) {
  Relation pa = Project(a, cols, /*dedup=*/true);
  Relation pb = Project(b, cols, /*dedup=*/true);
  if (pa.SetEquals(pb)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "relations differ:\n"
         << pa.ToString(reg) << "vs\n"
         << pb.ToString(reg);
}

/// Bag comparison on identical schemas with a readable failure message.
inline ::testing::AssertionResult SameBag(const Relation& a,
                                          const Relation& b,
                                          const AttributeRegistry& reg) {
  if (a.BagEquals(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "relations differ:\n"
         << a.ToString(reg) << "vs\n"
         << b.ToString(reg);
}

inline Tuple Row(std::vector<int64_t> vals) {
  Tuple t;
  for (int64_t v : vals) t.push_back(Value(v));
  return t;
}

}  // namespace testing
}  // namespace fdb

#endif  // FDB_TESTS_TEST_UTIL_H_
