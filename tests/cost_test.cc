#include "fdb/optimizer/cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fdb/core/build.h"
#include "fdb/optimizer/hypergraph.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(FractionalCoverTest, RootCoveredByItsRelation) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  // pizza is covered by Orders (5 rows) and Pizzas (7): cheapest is log 5.
  double bound = FractionalCoverLog(t, {p.n_pizza});
  EXPECT_NEAR(bound, std::log(5.0), 1e-6);
}

TEST(FractionalCoverTest, PathUsesOneEdgeWhenPossible) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  // The path pizza → date → customer is fully covered by Orders alone.
  double bound = FractionalCoverLog(t, {p.n_pizza, p.n_date, p.n_customer});
  EXPECT_NEAR(bound, std::log(5.0), 1e-6);
}

TEST(FractionalCoverTest, PathAcrossTwoRelations) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  // pizza → item → price needs Pizzas (or Orders for pizza) and Items.
  double bound = FractionalCoverLog(t, {p.n_pizza, p.n_item, p.n_price});
  // Items covers item & price (log 4); pizza needs Orders (log 5) or
  // Pizzas (log 7): expect log 4 + log 5.
  EXPECT_NEAR(bound, std::log(4.0) + std::log(5.0), 1e-6);
}

TEST(FractionalCoverTest, WeightsAreClampedAtTwo) {
  FTree t;
  int a = t.AddNode({0}, -1);
  t.AddEdge({{0}, 1.0, "tiny"});
  // Weight 1 would make coverage free; the clamp keeps it at log 2.
  EXPECT_NEAR(FractionalCoverLog(t, {a}), std::log(2.0), 1e-6);
}

TEST(FractionalCoverTest, UncoveredNodesAreSkipped) {
  FTree t;
  int a = t.AddNode({0}, -1);
  int b = t.AddNode({1}, a);
  t.AddEdge({{0}, 8.0, "ra"});
  // Node b has no covering edge: only a's constraint applies.
  EXPECT_NEAR(FractionalCoverLog(t, {a, b}), std::log(8.0), 1e-6);
}

TEST(NodeSizeBoundTest, DeeperNodesCostAtLeastAsMuch) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  EXPECT_LE(NodeSizeBoundLog(t, p.n_pizza),
            NodeSizeBoundLog(t, p.n_date) + 1e-9);
  EXPECT_LE(NodeSizeBoundLog(t, p.n_date),
            NodeSizeBoundLog(t, p.n_customer) + 1e-9);
}

TEST(FTreeCostTest, BranchingTreeBeatsPathTree) {
  // The paper's premise: the branching tree T is asymptotically smaller
  // than a path f-tree over the same attributes/relations.
  Pizzeria p = MakePizzeria();
  const FTree& branching = p.view().tree();

  AttrId customer = p.attr("customer"), date = p.attr("date"),
         pizza = p.attr("pizza"), item = p.attr("item"),
         price = p.attr("price");
  FTree path;
  int n = path.AddNode({pizza}, -1);
  n = path.AddNode({date}, n);
  n = path.AddNode({customer}, n);
  n = path.AddNode({item}, n);
  path.AddNode({price}, n);
  for (const Hyperedge& e : branching.edges()) path.AddEdge(e);

  EXPECT_LT(FTreeCost(branching), FTreeCost(path));
}

TEST(FTreeCostTest, BoundRankingMatchesActualSizesOnWorkloadData) {
  // The cost metric is only useful if its ranking of candidate f-trees
  // agrees with the actual factorisation sizes. Build the §6 workload and
  // factorise it over three alternative trees: the branching T, the path
  // in T's depth-first order, and a badly-ordered path (customer first).
  Database db;
  Workload w = GenerateWorkload(&db, SmallParams(2));
  AttributeRegistry& reg = db.registry();
  AttrId customer = *reg.Find("customer"), date = *reg.Find("date"),
         package = *reg.Find("package"), item = *reg.Find("item"),
         price = *reg.Find("price");
  auto edges = [&](FTree* t) {
    t->AddEdge({{customer, date, package},
                static_cast<double>(w.orders.size()), "Orders"});
    t->AddEdge({{item, package}, static_cast<double>(w.packages.size()),
                "Packages"});
    t->AddEdge({{item, price}, static_cast<double>(w.items.size()),
                "Items"});
  };

  FTree branching = w.ftree;

  FTree path;  // package → date → customer → item → price
  int n = path.AddNode({package}, -1);
  n = path.AddNode({date}, n);
  n = path.AddNode({customer}, n);
  n = path.AddNode({item}, n);
  path.AddNode({price}, n);
  edges(&path);

  FTree bad;  // customer → date → package → item → price
  n = bad.AddNode({customer}, -1);
  n = bad.AddNode({date}, n);
  n = bad.AddNode({package}, n);
  n = bad.AddNode({item}, n);
  bad.AddNode({price}, n);
  edges(&bad);

  std::vector<const Relation*> rels = {&w.orders, &w.packages, &w.items};
  int64_t actual_branching =
      FactoriseJoin(branching, rels).CountSingletons();
  int64_t actual_path = FactoriseJoin(path, rels).CountSingletons();
  int64_t actual_bad = FactoriseJoin(bad, rels).CountSingletons();

  // The data agrees that the branching tree beats both path trees (the two
  // path orders are close to each other on this data, so no ordering is
  // asserted between them).
  EXPECT_LT(actual_branching, actual_path);
  EXPECT_LT(actual_branching, actual_bad);
  // And the metric predicts the same.
  EXPECT_LT(FTreeCost(branching), FTreeCost(path));
  EXPECT_LT(FTreeCost(branching), FTreeCost(bad));
  // The bound really is an upper bound on the actual sizes.
  EXPECT_GE(FTreeCost(branching),
            static_cast<double>(actual_branching));
  EXPECT_GE(FTreeCost(path), static_cast<double>(actual_path));
  EXPECT_GE(FTreeCost(bad), static_cast<double>(actual_bad));
}

TEST(FTreeCostTest, CostGrowsWithRelationSizes) {
  Pizzeria small = MakePizzeria();
  double c1 = FTreeCost(small.view().tree());

  // Same tree shape with 100× heavier Orders.
  FTree scaled;
  AttrId customer = small.attr("customer"), date = small.attr("date"),
         pizza = small.attr("pizza"), item = small.attr("item"),
         price = small.attr("price");
  int n_pizza = scaled.AddNode({pizza}, -1);
  int n_date = scaled.AddNode({date}, n_pizza);
  scaled.AddNode({customer}, n_date);
  int n_item = scaled.AddNode({item}, n_pizza);
  scaled.AddNode({price}, n_item);
  scaled.AddEdge({{customer, date, pizza}, 500.0, "Orders"});
  scaled.AddEdge({{pizza, item}, 7.0, "Pizzas"});
  scaled.AddEdge({{item, price}, 4.0, "Items"});
  EXPECT_GT(FTreeCost(scaled), c1);
}

}  // namespace
}  // namespace fdb
