// End-to-end checks of the concrete numbers and claims in the paper:
// Example 1 (queries S and P), Example 2/9/10 (orders), Example 6
// (count composition), Example 8 (revenue values), and the thirteen
// benchmark queries of Figure 3 on a small instance of the §6 workload.

#include <gtest/gtest.h>

#include "fdb/engine/fdb_engine.h"
#include "fdb/engine/rdb_engine.h"
#include "fdb/workload/generator.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::SameBag;

TEST(PaperExamples, Example1QueryS) {
  // S = ̟customer,date,pizza;sum(price)(R): price of each ordered pizza.
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, date, pizza, sum(price) AS total FROM R "
      "GROUP BY customer, date, pizza");
  ASSERT_EQ(r.flat.size(), 5);
  // Every Capricciosa row totals 8, Hawaii 9, Margherita 6.
  int pz = r.flat.schema().IndexOf(p.attr("pizza"));
  int tot = 3;
  for (const Tuple& row : r.flat.rows()) {
    const std::string& pizza = row[pz].as_string();
    int64_t expect = pizza == "Capricciosa" ? 8 : pizza == "Hawaii" ? 9 : 6;
    EXPECT_EQ(row[tot].as_int(), expect) << pizza;
  }
}

TEST(PaperExamples, Example1QueryPRevenuePerCustomer) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R GROUP BY customer");
  ASSERT_EQ(r.flat.size(), 3);
  EXPECT_EQ(r.flat.rows()[0][0].as_string(), "Lucia");
  EXPECT_EQ(r.flat.rows()[0][1].as_int(), 9);
  EXPECT_EQ(r.flat.rows()[1][0].as_string(), "Mario");
  EXPECT_EQ(r.flat.rows()[1][1].as_int(), 22);
  EXPECT_EQ(r.flat.rows()[2][0].as_string(), "Pietro");
  EXPECT_EQ(r.flat.rows()[2][1].as_int(), 9);
}

TEST(PaperExamples, Example1Scenario3RevenuePerCustomerAndPizza) {
  Pizzeria p = MakePizzeria();
  FdbEngine fdb(p.db.get());
  RdbEngine rdb(p.db.get());
  std::string sql =
      "SELECT customer, pizza, sum(price) AS revenue FROM R "
      "GROUP BY customer, pizza";
  EXPECT_TRUE(SameBag(fdb.ExecuteSql(sql).flat, rdb.ExecuteSql(sql).flat,
                      p.db->registry()));
}

TEST(PaperExamples, Figure1FactorisationSize) {
  Pizzeria p = MakePizzeria();
  EXPECT_EQ(p.view().CountSingletons(), 26);
  EXPECT_EQ(p.view().CountTuples(), 13);
}

// The thirteen queries of Figure 3 over the §6 workload at a small scale.
class Figure3Queries : public ::testing::Test {
 protected:
  Figure3Queries() {
    WorkloadParams params = SmallParams(1);
    params.seed = 7;
    InstallWorkload(&db_, params, "R1");
    // R2 = R1 ordered by (package, date, item): factorised as a path.
    Relation r1 = db_.view("R1")->Flatten();
    db_.AddRelation("R1flat", r1);
    AttrId package = attr("package"), date = attr("date"),
           item = attr("item"), customer = attr("customer"),
           price = attr("price");
    db_.AddView("R2", FactoriseRelation(
                          r1, {package, date, item, customer, price}));
    db_.AddRelation("R2flat", r1);
    db_.AddView("R3", FactoriseRelation(*db_.relation("Orders"),
                                        {date, customer, package}));
  }

  AttrId attr(const std::string& name) { return *db_.registry().Find(name); }

  void ExpectAgree(const std::string& fdb_sql, bool check_order = false,
                   std::vector<SortKey> keys = {}) {
    FdbEngine fdb(&db_);
    RdbEngine rdb(&db_);
    FdbResult fr = fdb.ExecuteSql(fdb_sql);
    RdbResult rr = rdb.ExecuteSql(fdb_sql);
    EXPECT_TRUE(SameBag(fr.flat, rr.flat, db_.registry())) << fdb_sql;
    if (check_order) {
      EXPECT_TRUE(fr.flat.IsSortedBy(keys)) << fdb_sql;
    }
  }

  Database db_;
};

TEST_F(Figure3Queries, Q1) {
  ExpectAgree(
      "SELECT package, date, customer, sum(price) FROM R1 "
      "GROUP BY package, date, customer");
}

TEST_F(Figure3Queries, Q2) {
  ExpectAgree(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer");
}

TEST_F(Figure3Queries, Q3) {
  ExpectAgree(
      "SELECT date, package, sum(price) FROM R1 GROUP BY date, package");
}

TEST_F(Figure3Queries, Q4) {
  ExpectAgree("SELECT package, sum(price) FROM R1 GROUP BY package");
}

TEST_F(Figure3Queries, Q5) { ExpectAgree("SELECT sum(price) FROM R1"); }

TEST_F(Figure3Queries, Q6OrderByCustomer) {
  ExpectAgree(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
      "ORDER BY customer",
      true, {{attr("customer"), SortDir::kAsc}});
}

TEST_F(Figure3Queries, Q7OrderByRevenue) {
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
      "ORDER BY revenue");
  EXPECT_TRUE(
      r.flat.IsSortedBy({{*db_.registry().Find("revenue"), SortDir::kAsc}}));
  ExpectAgree(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer "
      "ORDER BY revenue");
}

TEST_F(Figure3Queries, Q8Q9OrdersOverQ3) {
  ExpectAgree(
      "SELECT date, package, sum(price) AS s FROM R1 GROUP BY date, "
      "package ORDER BY date, package",
      true,
      {{attr("date"), SortDir::kAsc}, {attr("package"), SortDir::kAsc}});
  ExpectAgree(
      "SELECT date, package, sum(price) AS s FROM R1 GROUP BY date, "
      "package ORDER BY package, date",
      true,
      {{attr("package"), SortDir::kAsc}, {attr("date"), SortDir::kAsc}});
}

TEST_F(Figure3Queries, Q10AlreadySortedView) {
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM R2 ORDER BY package, date, item");
  // R2's f-tree is the path (package, date, item, customer, price): no
  // swaps should be needed.
  for (const FOp& op : r.plan) EXPECT_NE(op.kind, FOpKind::kSwap);
  EXPECT_TRUE(r.flat.IsSortedBy({{attr("package"), SortDir::kAsc},
                                 {attr("date"), SortDir::kAsc},
                                 {attr("item"), SortDir::kAsc}}));
}

TEST_F(Figure3Queries, Q11SecondOrderSupportedWithoutWork) {
  // (package, item, date) is NOT supported by the path R2 tree directly...
  // but (package, item) prefixes are only supported by T-shaped trees. On
  // the path tree a swap is required; the result must still be correct.
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM R2 ORDER BY package, item, date");
  EXPECT_TRUE(r.flat.IsSortedBy({{attr("package"), SortDir::kAsc},
                                 {attr("item"), SortDir::kAsc},
                                 {attr("date"), SortDir::kAsc}}));
}

TEST_F(Figure3Queries, Q12RestructureOneSwap) {
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM R2 ORDER BY date, package, item");
  int swaps = 0;
  for (const FOp& op : r.plan) swaps += op.kind == FOpKind::kSwap;
  EXPECT_EQ(swaps, 1) << "date↔package swap expected";
  EXPECT_TRUE(r.flat.IsSortedBy({{attr("date"), SortDir::kAsc},
                                 {attr("package"), SortDir::kAsc},
                                 {attr("item"), SortDir::kAsc}}));
}

TEST_F(Figure3Queries, TShapedViewSupportsSeveralOrdersAtOnce) {
  // The paper's key Q10/Q11 claim: the T-shaped factorisation of R1
  // simultaneously supports (package, date, item) and (package, item,
  // date) — both enumerable with zero restructuring.
  FdbEngine fdb(&db_);
  for (const char* order : {"package, date, item", "package, item, date"}) {
    FdbResult r = fdb.ExecuteSql(std::string("SELECT * FROM R1 ORDER BY ") +
                                 order);
    for (const FOp& op : r.plan) {
      EXPECT_NE(op.kind, FOpKind::kSwap) << order;
    }
  }
}

TEST_F(Figure3Queries, Q13PartialResort) {
  FdbEngine fdb(&db_);
  FdbResult r = fdb.ExecuteSql(
      "SELECT * FROM R3 ORDER BY customer, date, package");
  int swaps = 0;
  for (const FOp& op : r.plan) swaps += op.kind == FOpKind::kSwap;
  EXPECT_EQ(swaps, 1) << "only customer↔date should be swapped";
  EXPECT_TRUE(r.flat.IsSortedBy({{attr("customer"), SortDir::kAsc},
                                 {attr("date"), SortDir::kAsc},
                                 {attr("package"), SortDir::kAsc}}));
  EXPECT_EQ(r.flat.size(), db_.relation("Orders")->size());
}

TEST_F(Figure3Queries, LimitVariantsReturnPrefixes) {
  FdbEngine fdb(&db_);
  FdbResult full = fdb.ExecuteSql(
      "SELECT * FROM R2 ORDER BY date, package, item");
  FdbResult lim = fdb.ExecuteSql(
      "SELECT * FROM R2 ORDER BY date, package, item LIMIT 10");
  ASSERT_EQ(lim.flat.size(), 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(lim.flat.rows()[i], full.flat.rows()[i]);
  }
}

}  // namespace
}  // namespace fdb
