#include "fdb/core/order.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/core/enumerate.h"
#include "fdb/core/ops/swap.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(SupportsOrderTest, Example9SupportedOrders) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  // Supported: (pizza); (pizza, date); (pizza, date, customer);
  // (pizza, item); (pizza, item, price); (pizza, date, item).
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza}));
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_date}));
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_date, p.n_customer}));
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_item}));
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_item, p.n_price}));
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_date, p.n_item}));
  // Not supported: (pizza, customer, date); (customer, pizza).
  EXPECT_FALSE(SupportsOrder(t, {p.n_pizza, p.n_customer, p.n_date}));
  EXPECT_FALSE(SupportsOrder(t, {p.n_customer, p.n_pizza}));
  EXPECT_FALSE(SupportsOrder(t, {p.n_date}));
}

TEST(SupportsGroupingTest, Example10PermutationsSupported) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  // Grouping ignores list order: all permutations of supported order sets
  // are supported groupings.
  EXPECT_TRUE(SupportsGrouping(t, {p.n_pizza}));
  EXPECT_TRUE(SupportsGrouping(t, {p.n_date, p.n_pizza}));
  EXPECT_TRUE(SupportsGrouping(t, {p.n_customer, p.n_date, p.n_pizza}));
  EXPECT_TRUE(SupportsGrouping(t, {p.n_item, p.n_pizza, p.n_date}));
  // But a gap in the top fragment is not allowed.
  EXPECT_FALSE(SupportsGrouping(t, {p.n_customer, p.n_pizza}));
  EXPECT_FALSE(SupportsGrouping(t, {p.n_date}));
}

TEST(PlanRestructureTest, AlreadySupportedNeedsNoSwaps) {
  Pizzeria p = MakePizzeria();
  EXPECT_TRUE(
      PlanRestructure(p.view().tree(), {p.n_pizza, p.n_date}, {}).empty());
  EXPECT_TRUE(PlanRestructure(p.view().tree(), {},
                              {p.n_pizza, p.n_date, p.n_item})
                  .empty());
}

TEST(PlanRestructureTest, PushCustomerToRoot) {
  // Example 2: order (customer, pizza, item, price) is obtained by pushing
  // customer past date and pizza; the right branch is untouched.
  Pizzeria p = MakePizzeria();
  FTree t = p.view().tree();
  std::vector<int> plan = PlanRestructure(
      t, {p.n_customer, p.n_pizza, p.n_item, p.n_price}, {});
  EXPECT_EQ(plan, (std::vector<int>{p.n_customer, p.n_customer}));
  for (int b : plan) t.SwapUp(b);
  EXPECT_TRUE(SupportsOrder(
      t, {p.n_customer, p.n_pizza, p.n_item, p.n_price}));
  EXPECT_TRUE(t.SatisfiesPathConstraint());
}

TEST(PlanRestructureTest, GroupingPushesAllGroupNodesUp) {
  Pizzeria p = MakePizzeria();
  FTree t = p.view().tree();
  std::vector<int> plan =
      PlanRestructure(t, {}, {p.n_customer, p.n_item});
  for (int b : plan) t.SwapUp(b);
  EXPECT_TRUE(SupportsGrouping(t, {p.n_customer, p.n_item}));
  EXPECT_TRUE(t.SatisfiesPathConstraint());
}

TEST(PlanRestructureTest, Q13StylePartialResort) {
  // R3 = Orders factorised by (date, customer, package); re-sorting by
  // (customer, date, package) needs only one swap: the package lists
  // under (date, customer) are reused (Experiment 4).
  Pizzeria p = MakePizzeria();
  AttrId customer = p.attr("customer"), date = p.attr("date"),
         pizza = p.attr("pizza");
  Factorisation r3 =
      FactoriseRelation(*p.db->relation("Orders"), {date, customer, pizza});
  int n_date = r3.tree().NodeOfAttr(date);
  int n_customer = r3.tree().NodeOfAttr(customer);
  int n_pizza = r3.tree().NodeOfAttr(pizza);
  std::vector<int> plan = PlanRestructure(
      r3.tree(), {n_customer, n_date, n_pizza}, {});
  EXPECT_EQ(plan, std::vector<int>{n_customer});

  // Applying it yields correctly ordered enumeration.
  for (int b : plan) ApplySwap(&r3, b);
  Relation sorted = EnumerateToRelation(
      r3, OrderedVisitSequence(r3.tree(), {n_customer, n_date, n_pizza}),
      std::vector<SortDir>(3, SortDir::kAsc));
  EXPECT_TRUE(sorted.IsSortedBy({{customer, SortDir::kAsc},
                                 {date, SortDir::kAsc},
                                 {pizza, SortDir::kAsc}}));
  EXPECT_EQ(sorted.size(), 5);
}

TEST(PlanRestructureTest, SettledNodesNeverMove) {
  // Pushing a deep node up must not disturb already settled order nodes.
  Pizzeria p = MakePizzeria();
  FTree t = p.view().tree();
  std::vector<int> plan =
      PlanRestructure(t, {p.n_pizza, p.n_customer}, {});
  for (int b : plan) t.SwapUp(b);
  EXPECT_TRUE(SupportsOrder(t, {p.n_pizza, p.n_customer}));
  EXPECT_EQ(t.roots(), std::vector<int>{p.n_pizza});
  EXPECT_EQ(t.parent(p.n_customer), p.n_pizza);
}

TEST(OrderedVisitSequenceTest, PrefixesAreOrderNodes) {
  Pizzeria p = MakePizzeria();
  std::vector<int> seq =
      OrderedVisitSequence(p.view().tree(), {p.n_pizza, p.n_item});
  ASSERT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0], p.n_pizza);
  EXPECT_EQ(seq[1], p.n_item);
}

TEST(OrderedVisitSequenceTest, UnsupportedOrderThrows) {
  Pizzeria p = MakePizzeria();
  EXPECT_THROW(OrderedVisitSequence(p.view().tree(), {p.n_customer}),
               std::invalid_argument);
}

TEST(OrderEnumerationTest, DescendingKeysAcrossRestructure) {
  // Order by (customer DESC, pizza ASC) end to end.
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  std::vector<int> plan =
      PlanRestructure(f.tree(), {p.n_customer, p.n_pizza}, {});
  for (int b : plan) ApplySwap(&f, b);
  std::vector<int> visit =
      OrderedVisitSequence(f.tree(), {p.n_customer, p.n_pizza});
  std::vector<SortDir> dirs(visit.size(), SortDir::kAsc);
  dirs[0] = SortDir::kDesc;
  Relation r = EnumerateToRelation(f, visit, dirs);
  EXPECT_EQ(r.size(), 13);
  EXPECT_TRUE(r.IsSortedBy({{p.attr("customer"), SortDir::kDesc},
                            {p.attr("pizza"), SortDir::kAsc}}));
}

}  // namespace
}  // namespace fdb
