#include "fdb/storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/storage/io_env.h"
#include "fdb/storage/snapshot.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FlattenCsv(const Factorisation& f, const AttributeRegistry& reg) {
  std::ostringstream out;
  WriteCsv(f.Flatten(), reg, out);
  return out.str();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

int64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.good() ? static_cast<int64_t>(in.tellg()) : -1;
}

/// A database with one updatable two-attribute view "V" over `rows`
/// tuples (x/10, x), plus a WAL bound at `path`.
Database MakeWalDb(const std::string& path, int64_t rows,
                   const std::string& prefix) {
  Database db;
  AttrId a = db.Attr(prefix + "_a"), b = db.Attr(prefix + "_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < rows; ++x) r.Add({Value(x / 10), Value(x)});
  db.AddView("V", FactoriseRelation(r, {a, b}));
  db.EnableWal(path);
  return db;
}

class WalGuard {
 public:
  ~WalGuard() { storage::IoEnv::Instance().ClearFailpoints(); }
};

TEST(WalTest, AutocommitIsDurable) {
  std::string path = TempPath("wal_auto.fdbs");
  Database db = MakeWalDb(path, 50, "wa");
  db.Insert("V", Row({100, 1000}));
  db.Delete("V", Row({0, 0}));

  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({100, 1000})));
  EXPECT_FALSE(ContainsTuple(*re.view("V"), Row({0, 0})));
  EXPECT_EQ(FlattenCsv(*re.view("V"), re.registry()),
            FlattenCsv(*db.view("V"), db.registry()));
}

TEST(WalTest, CommitGroupIsDurableAndAtomic) {
  std::string path = TempPath("wal_commit.fdbs");
  Database db = MakeWalDb(path, 50, "wc");
  db.Begin();
  for (int64_t i = 0; i < 20; ++i) db.Insert("V", Row({200, 2000 + i}));
  db.Delete("V", Row({1, 11}));
  EXPECT_GT(db.Commit(), 0u);

  Database re = Database::Open(path);
  EXPECT_EQ(re.view("V")->CountTuples(), 50 - 1 + 20);
  EXPECT_EQ(FlattenCsv(*re.view("V"), re.registry()),
            FlattenCsv(*db.view("V"), db.registry()));
}

TEST(WalTest, RollbackDiscardsPendingOps) {
  std::string path = TempPath("wal_rollback.fdbs");
  Database db = MakeWalDb(path, 50, "wr");
  db.Begin();
  db.Insert("V", Row({300, 3000}));
  db.Rollback();
  EXPECT_FALSE(ContainsTuple(*db.view("V"), Row({300, 3000})));
  Database re = Database::Open(path);
  EXPECT_EQ(re.view("V")->CountTuples(), 50);
}

TEST(WalTest, UncommittedGroupIsNotReplayed) {
  std::string path = TempPath("wal_uncommitted.fdbs");
  Database db = MakeWalDb(path, 50, "wu");
  db.Insert("V", Row({9, 90}));
  db.Begin();
  db.Insert("V", Row({400, 4000}));
  // No Commit: the process "dies" with the group buffered in memory only.
  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({9, 90})));
  EXPECT_FALSE(ContainsTuple(*re.view("V"), Row({400, 4000})));
}

TEST(WalTest, TornTailIsTruncatedAtRecovery) {
  std::string path = TempPath("wal_torn.fdbs");
  {
    Database db = MakeWalDb(path, 50, "wt");
    db.Insert("V", Row({500, 5000}));
    db.Insert("V", Row({501, 5001}));
  }
  // A torn frame: garbage where the next commit would have gone.
  std::string wal = ReadFile(storage::WalPath(path));
  WriteFile(storage::WalPath(path), wal + std::string(13, '\x7f'));

  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({500, 5000})));
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({501, 5001})));
  EXPECT_EQ(re.view("V")->CountTuples(), 52);
}

TEST(WalTest, CorruptFrameDropsItAndTheSuffix) {
  std::string path = TempPath("wal_corrupt.fdbs");
  {
    Database db = MakeWalDb(path, 50, "wx");
    db.Insert("V", Row({600, 6000}));
    db.Insert("V", Row({601, 6001}));
    db.Insert("V", Row({602, 6002}));
  }
  std::string wal = ReadFile(storage::WalPath(path));
  // Flip one bit in the second frame's payload region: recovery must
  // keep group 1 and drop groups 2 and 3 (prefix consistency).
  size_t frame1_end = sizeof(storage::WalHeader) + (wal.size() -
                      sizeof(storage::WalHeader)) / 3;
  wal[frame1_end + 30] ^= 0x01;
  WriteFile(storage::WalPath(path), wal);

  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({600, 6000})));
  EXPECT_FALSE(ContainsTuple(*re.view("V"), Row({602, 6002})));
}

TEST(WalTest, CheckpointFoldsAndResetsTheLog) {
  std::string path = TempPath("wal_fold.fdbs");
  Database db = MakeWalDb(path, 50, "wf");
  db.Insert("V", Row({700, 7000}));
  EXPECT_GT(FileSize(storage::WalPath(path)),
            static_cast<int64_t>(sizeof(storage::WalHeader)));

  storage::CheckpointInfo info = db.Checkpoint(path);
  EXPECT_EQ(info.kind, storage::CheckpointInfo::kDelta);
  // Folded: the log is back to a bare header...
  EXPECT_EQ(FileSize(storage::WalPath(path)),
            static_cast<int64_t>(sizeof(storage::WalHeader)));
  // ...and replay comes from the chain alone.
  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({700, 7000})));
  EXPECT_EQ(re.view("V")->CountTuples(), 51);

  // Post-fold commits land in the fresh log and replay on top.
  db.Insert("V", Row({701, 7001}));
  Database re2 = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re2.view("V"), Row({701, 7001})));
  EXPECT_EQ(re2.view("V")->CountTuples(), 52);
}

TEST(WalTest, SaveFoldsAndResetsTheLog) {
  std::string path = TempPath("wal_save_fold.fdbs");
  Database db = MakeWalDb(path, 50, "ws");
  db.Insert("V", Row({800, 8000}));
  db.Save(path);
  EXPECT_EQ(FileSize(storage::WalPath(path)),
            static_cast<int64_t>(sizeof(storage::WalHeader)));
  db.Insert("V", Row({801, 8001}));
  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({800, 8000})));
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({801, 8001})));
}

TEST(WalTest, StaleLogIsIgnoredWhole) {
  std::string path = TempPath("wal_stale.fdbs");
  Database db = MakeWalDb(path, 50, "wg");
  db.Insert("V", Row({900, 9000}));
  std::string old_log = ReadFile(storage::WalPath(path));
  ASSERT_EQ(db.Checkpoint(path).kind, storage::CheckpointInfo::kDelta);
  // A crashed fold can leave the pre-fold log behind; its stamp predates
  // the chain, so replay must skip it entirely — the delta already holds
  // group 1, and replaying it again would be wrong for deletes.
  WriteFile(storage::WalPath(path), old_log);

  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({900, 9000})));
  EXPECT_EQ(re.view("V")->CountTuples(), 51);
}

TEST(WalTest, StringTuplesRoundTrip) {
  std::string path = TempPath("wal_strings.fdbs");
  Database db;
  AttrId a = db.Attr("wstr_a"), b = db.Attr("wstr_b");
  Relation r{RelSchema({a, b})};
  r.Add({Value("alpha"), Value(int64_t{1})});
  r.Add({Value("beta"), Value(int64_t{2})});
  db.AddView("V", FactoriseRelation(r, {a, b}));
  db.EnableWal(path);

  db.Begin();
  db.Insert("V", {Value("gamma"), Value(int64_t{3})});
  db.Insert("V", {Value("delta with spaces \x01\x02"), Value(int64_t{4})});
  db.Delete("V", {Value("alpha"), Value(int64_t{1})});
  db.Commit();

  Database re = Database::Open(path);
  EXPECT_TRUE(
      ContainsTuple(*re.view("V"), {Value("gamma"), Value(int64_t{3})}));
  EXPECT_TRUE(ContainsTuple(
      *re.view("V"), {Value("delta with spaces \x01\x02"), Value(int64_t{4})}));
  EXPECT_FALSE(
      ContainsTuple(*re.view("V"), {Value("alpha"), Value(int64_t{1})}));
  EXPECT_EQ(re.view("V")->CountTuples(), 3);
}

TEST(WalTest, CommitFsyncFailureLeavesTxnOpenAndRetryable) {
  WalGuard guard;
  std::string path = TempPath("wal_fsync_fail.fdbs");
  Database db = MakeWalDb(path, 50, "wfs");
  db.Begin();
  db.Insert("V", Row({123, 1234}));
  storage::IoEnv::Instance().SetFailpoints("wal_fsync:1");
  EXPECT_THROW(db.Commit(), std::invalid_argument);
  // The group was not acknowledged and must not have been applied.
  EXPECT_FALSE(ContainsTuple(*db.view("V"), Row({123, 1234})));
  EXPECT_TRUE(db.WalStatus().in_txn);

  storage::IoEnv::Instance().ClearFailpoints();
  EXPECT_GT(db.Commit(), 0u);  // retry: torn tail truncated, then appended
  EXPECT_TRUE(ContainsTuple(*db.view("V"), Row({123, 1234})));
  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({123, 1234})));
  EXPECT_EQ(re.view("V")->CountTuples(), 51);
}

TEST(WalTest, OneFsyncPerCommitGroup) {
  std::string path = TempPath("wal_one_fsync.fdbs");
  Database db = MakeWalDb(path, 50, "wof");
  storage::IoEnv& io = storage::IoEnv::Instance();
  io.ResetCounts();
  db.Begin();
  for (int64_t i = 0; i < 100; ++i) db.Insert("V", Row({77, 10000 + i}));
  db.Commit();
  EXPECT_EQ(io.Count("wal_fsync"), 1u);
  EXPECT_EQ(io.Count("wal_write"), 1u);
}

TEST(WalTest, WalStatusReportsPendingAndCommitted) {
  std::string path = TempPath("wal_status.fdbs");
  Database db = MakeWalDb(path, 50, "wst");
  storage::WalStatus s0 = db.WalStatus();
  EXPECT_TRUE(s0.enabled);
  EXPECT_FALSE(s0.in_txn);
  EXPECT_EQ(s0.committed_groups, 0u);
  EXPECT_EQ(s0.pending_ops, 0u);

  db.Begin();
  db.Insert("V", Row({42, 420}));
  db.Insert("V", Row({42, 421}));
  storage::WalStatus s1 = db.WalStatus();
  EXPECT_TRUE(s1.in_txn);
  EXPECT_EQ(s1.pending_ops, 2u);
  EXPECT_GT(s1.pending_bytes, 0u);

  db.Commit();
  storage::WalStatus s2 = db.WalStatus();
  EXPECT_FALSE(s2.in_txn);
  EXPECT_EQ(s2.pending_ops, 0u);
  EXPECT_EQ(s2.committed_groups, 1u);
  EXPECT_GT(s2.wal_bytes, static_cast<uint64_t>(sizeof(storage::WalHeader)));
}

TEST(WalTest, ValidationIsEagerAndLeavesNothingBehind) {
  std::string path = TempPath("wal_validate.fdbs");
  Database db = MakeWalDb(path, 50, "wv");
  EXPECT_THROW(db.Insert("nope", Row({1, 2})), std::invalid_argument);
  EXPECT_THROW(db.Insert("V", Row({1, 2, 3})), std::invalid_argument);
  db.Begin();
  db.Insert("V", Row({1000, 10000}));
  EXPECT_THROW(db.Insert("V", Row({1})), std::invalid_argument);
  db.Commit();
  Database re = Database::Open(path);
  EXPECT_EQ(re.view("V")->CountTuples(), 51);
}

TEST(WalTest, DisableWalFoldsAndRemovesTheLog) {
  std::string path = TempPath("wal_disable.fdbs");
  Database db = MakeWalDb(path, 50, "wd");
  db.Insert("V", Row({11, 111}));
  db.DisableWal();
  EXPECT_FALSE(db.wal_enabled());
  EXPECT_EQ(FileSize(storage::WalPath(path)), -1);  // file removed
  Database re = Database::Open(path);
  EXPECT_TRUE(ContainsTuple(*re.view("V"), Row({11, 111})));
}

TEST(WalTest, TransactionStateErrors) {
  std::string path = TempPath("wal_errors.fdbs");
  Database db = MakeWalDb(path, 10, "we");
  EXPECT_THROW(db.Commit(), std::invalid_argument);
  EXPECT_THROW(db.Rollback(), std::invalid_argument);
  db.Begin();
  EXPECT_THROW(db.Begin(), std::invalid_argument);
  EXPECT_THROW(db.EnableWal(path), std::invalid_argument);
  EXPECT_THROW(db.DisableWal(), std::invalid_argument);
  EXPECT_EQ(db.Commit(), 0u);  // empty group: nothing to log
}

TEST(WalTest, TransactionsWorkWithoutAWal) {
  // Begin/Commit batching is useful purely in memory too (one rebuild
  // per union per group); there is just no durability.
  Database db;
  AttrId a = db.Attr("nw_a"), b = db.Attr("nw_b");
  Relation r{RelSchema({a, b})};
  r.Add(Row({1, 2}));
  db.AddView("V", FactoriseRelation(r, {a, b}));
  db.Begin();
  db.Insert("V", Row({3, 4}));
  db.Insert("V", Row({5, 6}));
  EXPECT_EQ(db.Commit(), 0u);
  EXPECT_EQ(db.view("V")->CountTuples(), 3);
}

TEST(WalTest, CorruptPayloadInValidFrameNamesPathAndOffset) {
  std::string path = TempPath("wal_diag.fdbs");
  {
    Database db = MakeWalDb(path, 10, "wdx");
    db.Insert("V", Row({1, 2}));
  }
  // Forge a CRC-valid frame whose payload is garbage: recovery must
  // refuse loudly (this is not a torn tail) and say where.
  std::string wal = ReadFile(storage::WalPath(path));
  storage::WalFrameHeader frame{};
  std::string payload(3, '\xff');  // kind 255: invalid
  frame.size = static_cast<uint32_t>(payload.size());
  frame.seq = 2;
  frame.count = 1;
  std::string buf(reinterpret_cast<const char*>(&frame), sizeof(frame));
  buf += payload;
  uint32_t crc = storage::Crc32(buf.data() + sizeof(uint32_t),
                                buf.size() - sizeof(uint32_t));
  std::memcpy(buf.data(), &crc, sizeof(crc));
  WriteFile(storage::WalPath(path), wal + buf);

  try {
    Database::Open(path);
    FAIL() << "corrupt payload in a CRC-valid frame must throw";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find(storage::WalPath(path)), std::string::npos) << msg;
    EXPECT_NE(msg.find("at byte"), std::string::npos) << msg;
  }
}

TEST(WalTest, SnapshotParseErrorsNamePathAndOffset) {
  std::string path = TempPath("wal_diag_snap.fdbs");
  Database db = MakeWalDb(path, 10, "wds");
  db.DisableWal();
  std::string bytes = ReadFile(path);
  WriteFile(path, bytes.substr(0, bytes.size() / 2));  // truncate
  try {
    Database::Open(path);
    FAIL() << "truncated snapshot must throw";
  } catch (const std::invalid_argument& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace fdb
