#include "fdb/exec/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fdb/engine/database.h"
#include "fdb/engine/fdb_engine.h"
#include "fdb/exec/task_pool.h"
#include "fdb/obs/metrics.h"
#include "fdb/workload/generator.h"

// Cooperative cancellation: token semantics, propagation into ParallelFor
// workers, and end-to-end enforcement against real engine queries.

namespace fdb {
namespace {

TEST(CancelTokenTest, UntrippedTokenIsTransparent) {
  exec::CancelToken t;
  t.Arm(0, 0);  // no deadline, no memory cap
  EXPECT_FALSE(t.cancelled());
  EXPECT_NO_THROW(t.Check());
  EXPECT_NO_THROW(t.ChargeMemory(1 << 30));
  EXPECT_EQ(t.reason(), exec::CancelReason::kNone);
}

TEST(CancelTokenTest, ExternalCancelTripsOnceAndSticks) {
  exec::CancelToken t;
  t.Arm(0, 0);
  t.Cancel();
  ASSERT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), exec::CancelReason::kCancelled);
  try {
    t.Check();
    FAIL() << "Check must throw after Cancel";
  } catch (const exec::QueryCancelled& e) {
    EXPECT_EQ(e.reason(), exec::CancelReason::kCancelled);
  }
  // A later deadline trip must not override the first reason.
  t.Cancel();
  EXPECT_EQ(t.reason(), exec::CancelReason::kCancelled);
}

TEST(CancelTokenTest, DeadlineTripsAsTimeout) {
  exec::CancelToken t;
  t.Arm(obs::NowNs() - 1, 0);  // already in the past
  EXPECT_THROW(t.Check(), exec::QueryCancelled);
  EXPECT_EQ(t.reason(), exec::CancelReason::kTimeout);
}

TEST(CancelTokenTest, MemoryBudgetTripsAtTheBoundary) {
  exec::CancelToken t;
  t.Arm(0, 1000);
  EXPECT_NO_THROW(t.ChargeMemory(600));
  EXPECT_EQ(t.memory_used(), 600);
  EXPECT_THROW(t.ChargeMemory(600), exec::QueryCancelled);
  EXPECT_EQ(t.reason(), exec::CancelReason::kMemory);
}

TEST(CancelTokenTest, RearmClearsThePreviousTrip) {
  exec::CancelToken t;
  t.Arm(0, 10);
  EXPECT_THROW(t.ChargeMemory(100), exec::QueryCancelled);
  t.Arm(0, 0);
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.memory_used(), 0);
  EXPECT_NO_THROW(t.Check());
}

TEST(CancelTokenTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(exec::CurrentCancelToken(), nullptr);
  exec::CancelToken outer, inner;
  {
    exec::CancelScope a(&outer);
    EXPECT_EQ(exec::CurrentCancelToken(), &outer);
    {
      exec::CancelScope b(&inner);
      EXPECT_EQ(exec::CurrentCancelToken(), &inner);
    }
    EXPECT_EQ(exec::CurrentCancelToken(), &outer);
  }
  EXPECT_EQ(exec::CurrentCancelToken(), nullptr);
}

TEST(CancelTokenTest, PollCancelHonoursTheMask) {
  exec::CancelToken t;
  t.Arm(0, 0);
  t.Cancel();
  exec::CancelScope scope(&t);
  uint32_t counter = 0;
  // Counter goes 1..255 without a check, throws on the 256th call.
  for (int i = 0; i < 255; ++i) {
    EXPECT_NO_THROW(exec::PollCancel(&counter));
  }
  EXPECT_THROW(exec::PollCancel(&counter), exec::QueryCancelled);
}

TEST(CancelTokenTest, ParallelForWorkersSeeTheCallersToken) {
  exec::TaskPool pool(4);
  exec::CancelToken t;
  t.Arm(0, 0);
  exec::CancelScope scope(&t);
  std::atomic<int> token_seen{0};
  pool.ParallelFor(64, 1, [&](int, int64_t, int64_t) {
    if (exec::CurrentCancelToken() == &t) {
      token_seen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(token_seen.load(), 64);
}

TEST(CancelTokenTest, CancelledTokenSkipsRemainingChunksWithoutHanging) {
  exec::TaskPool pool(4);
  exec::CancelToken t;
  t.Arm(0, 0);
  exec::CancelScope scope(&t);
  std::atomic<int> ran{0};
  // Trip the token from inside the first chunks; ParallelFor must still
  // complete (skipped chunks are counted) and most chunks never run.
  pool.ParallelFor(1000, 1, [&](int, int64_t lo, int64_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (lo == 0) t.Cancel();
  });
  EXPECT_TRUE(t.cancelled());
  EXPECT_LT(ran.load(), 1000);
}

// --- end-to-end enforcement against the real engine ---------------------

class CancelEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    InstallWorkload(&db_, SmallParams(4), "R1");
    db_.AddRelation("R1flat", db_.view("R1")->Flatten());
  }
  Database db_;
};

TEST_F(CancelEngineTest, ExpiredDeadlineKillsAQueryCleanly) {
  FdbEngine engine(&db_);
  exec::CancelToken t;
  t.Arm(obs::NowNs() - 1, 0);
  exec::CancelScope scope(&t);
  bool threw = false;
  try {
    // A wide projection: thousands of output rows, so the enumeration
    // poll (every 256 rows) fires many times.
    engine.ExecuteSql("SELECT customer, item FROM R1");
  } catch (const exec::QueryCancelled& e) {
    threw = true;
    EXPECT_EQ(e.reason(), exec::CancelReason::kTimeout);
  }
  EXPECT_TRUE(threw);
  // The database is untouched: the same query runs fine without a token.
  exec::CancelScope clear(nullptr);
  EXPECT_NO_THROW(engine.ExecuteSql("SELECT customer FROM R1"));
}

TEST_F(CancelEngineTest, TinyMemoryBudgetKillsABuildingQuery) {
  FdbEngine engine(&db_);
  exec::CancelToken t;
  t.Arm(0, 512);  // no real query fits in half a KiB of arena
  exec::CancelScope scope(&t);
  bool threw = false;
  try {
    engine.ExecuteSql(
        "SELECT customer, item FROM R1 ORDER BY customer");
  } catch (const exec::QueryCancelled& e) {
    threw = true;
    EXPECT_EQ(e.reason(), exec::CancelReason::kMemory);
    EXPECT_GT(t.memory_used(), 512);
  }
  EXPECT_TRUE(threw);
}

TEST_F(CancelEngineTest, NoTokenMeansNoLimits) {
  ASSERT_EQ(exec::CurrentCancelToken(), nullptr);
  FdbEngine engine(&db_);
  EXPECT_NO_THROW(engine.ExecuteSql(
      "SELECT customer, sum(price) AS revenue FROM R1 GROUP BY customer"));
}

}  // namespace
}  // namespace fdb
