// Crash-recovery harness: kills the storage write path at randomized
// points through a mixed insert/delete/checkpoint workload and asserts
// that every recovery yields a committed-prefix-consistent database —
// the state equals a shadow replay of the first m acknowledged commit
// groups, with S <= m <= A (S = groups acked before the crash, A = S
// plus the possibly-durable in-flight group; after an fsync that failed
// late, the frame may legitimately be on disk).
//
// The "crash" is IoEnv's sticky-dead fault injection: the k-th shimmed
// I/O call fails (or tears mid-write) and every later one fails too, so
// nothing the process "did" after the crash point can reach disk. Kill
// points k are drawn over the calibrated call count of the whole
// workload, so crashes land in WAL appends, fsyncs, delta publishes,
// base folds, renames and directory syncs alike.

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fdb/core/build.h"
#include "fdb/core/update.h"
#include "fdb/engine/csv.h"
#include "fdb/engine/database.h"
#include "fdb/storage/io_env.h"
#include "fdb/storage/snapshot.h"
#include "fdb/storage/wal.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::Row;

constexpr int64_t kInitialRows = 200;
constexpr int kSteps = 30;

std::string FlattenCsv(const Factorisation& f, const AttributeRegistry& reg) {
  std::ostringstream out;
  WriteCsv(f.Flatten(), reg, out);
  return out.str();
}

Factorisation MakeInitialView(AttributeRegistry* reg) {
  AttrId a = reg->Intern("cr_a"), b = reg->Intern("cr_b");
  Relation r{RelSchema({a, b})};
  for (int64_t x = 0; x < kInitialRows; ++x) r.Add({Value(x / 10), Value(x)});
  return FactoriseRelation(r, {a, b});
}

Database MakeInitialDb(const std::string& path) {
  Database db;
  db.AddView("V", MakeInitialView(&db.registry()));
  db.EnableWal(path);
  return db;
}

// One scripted step: a commit group, or a persistence call.
struct Step {
  enum Kind { kCommit, kCheckpoint, kSave } kind = kCommit;
  std::vector<BatchOp> ops;  // for kCommit
};

// The deterministic workload script. Group ops draw from a small key
// space so deletes hit real tuples and inserts collide with existing
// prefixes; every iteration replays the same script so the shadow and
// the crashed run agree op for op.
std::vector<Step> MakeScript(uint32_t seed, bool with_persistence) {
  std::mt19937 rng(seed);
  std::vector<Step> script;
  for (int s = 0; s < kSteps; ++s) {
    uint32_t r = rng() % 100;
    if (with_persistence && r < 12) {
      script.push_back({Step::kCheckpoint, {}});
      continue;
    }
    if (with_persistence && r < 16) {
      script.push_back({Step::kSave, {}});
      continue;
    }
    Step st;
    size_t k = 1 + rng() % 8;
    for (size_t i = 0; i < k; ++i) {
      BatchOp op;
      op.insert = rng() % 3 != 0;  // 2/3 inserts, 1/3 deletes
      int64_t x = static_cast<int64_t>(rng() % (kInitialRows + 100));
      op.tuple = Row({x / 10, x});
      st.ops.push_back(std::move(op));
    }
    script.push_back(std::move(st));
  }
  return script;
}

// Shadow replay: the view's Flatten after each commit-group prefix.
// flat[m] is the expected state with exactly the first m groups applied.
std::vector<std::string> ShadowPrefixes(const std::vector<Step>& script) {
  AttributeRegistry reg;
  Factorisation shadow = MakeInitialView(&reg);
  std::vector<std::string> flat;
  flat.push_back(FlattenCsv(shadow, reg));
  for (const Step& st : script) {
    if (st.kind != Step::kCommit) continue;
    ApplyBatch(&shadow, st.ops);
    flat.push_back(FlattenCsv(shadow, reg));
  }
  return flat;
}

// Runs the script against `db`, stopping at the first injected failure.
// Returns (acked groups, attempted groups).
std::pair<size_t, size_t> RunScript(Database* db, const std::string& path,
                                    const std::vector<Step>& script) {
  size_t acked = 0, attempted = 0;
  try {
    for (const Step& st : script) {
      switch (st.kind) {
        case Step::kCommit:
          db->Begin();
          for (const BatchOp& op : st.ops) {
            if (op.insert) {
              db->Insert("V", op.tuple);
            } else {
              db->Delete("V", op.tuple);
            }
          }
          ++attempted;
          db->Commit();
          ++acked;
          break;
        case Step::kCheckpoint:
          db->Checkpoint(path);
          break;
        case Step::kSave:
          db->Save(path);
          break;
      }
    }
  } catch (const std::invalid_argument&) {
    // The crash: the process is "dead" from here on.
  }
  return {acked, attempted};
}

// One crashed run + recovery. Returns the recovered state's prefix index
// via assertion: FlattenCsv must equal some shadow prefix in
// [min_prefix, attempted].
void RunOneCrash(const std::string& dir, int iter, uint64_t kill_point,
                 const char* mode, const std::vector<Step>& script,
                 const std::vector<std::string>& shadow,
                 bool prefix_only) {
  storage::IoEnv& io = storage::IoEnv::Instance();
  std::string path = dir + "/crash_" + std::to_string(iter) + ".fdbs";
  size_t acked = 0, attempted = 0;
  {
    Database db = MakeInitialDb(path);  // not under fault injection
    io.SetFailpoints("any:" + std::to_string(kill_point) + ":" + mode);
    std::tie(acked, attempted) = RunScript(&db, path, script);
    io.ClearFailpoints();
  }

  Database re = Database::Open(path);
  std::string got = FlattenCsv(*re.view("V"), re.registry());
  size_t lo = prefix_only ? 0 : acked;
  bool matched = false;
  size_t matched_m = 0;
  for (size_t m = lo; m <= attempted && m < shadow.size(); ++m) {
    if (got == shadow[m]) {
      matched = true;
      matched_m = m;
      break;
    }
  }
  ASSERT_TRUE(matched) << "iteration " << iter << " kill=" << kill_point
                       << " mode=" << mode << ": recovered state matches no "
                       << "commit prefix in [" << lo << ", " << attempted
                       << "] (acked=" << acked << ")";
  EXPECT_GE(matched_m, lo);

  // Cleanup so 200+ iterations do not fill the temp dir.
  std::remove(storage::WalPath(path).c_str());
  std::remove(path.c_str());
  for (uint64_t seq = 1; seq <= 2 * storage::kMaxDeltaChain + 2; ++seq) {
    std::remove(storage::DeltaPath(path, seq).c_str());
  }
}

// Calibrates the workload's total shimmed-call count with no faults.
uint64_t Calibrate(const std::string& dir, const std::vector<Step>& script,
                   const std::vector<std::string>& shadow) {
  storage::IoEnv& io = storage::IoEnv::Instance();
  std::string path = dir + "/calibrate.fdbs";
  Database db = MakeInitialDb(path);
  io.ResetCounts();
  auto [acked, attempted] = RunScript(&db, path, script);
  uint64_t total = io.Count("any");
  EXPECT_EQ(acked, attempted);  // no faults: everything acks
  // Sanity: the fault-free run ends at the full shadow state.
  Database re = Database::Open(path);
  EXPECT_EQ(FlattenCsv(*re.view("V"), re.registry()), shadow.back());
  return total;
}

TEST(WalCrashTest, RandomizedKillPointsRecoverCommittedPrefix) {
  const std::string dir = ::testing::TempDir();
  std::vector<Step> script = MakeScript(20260808, /*with_persistence=*/true);
  std::vector<std::string> shadow = ShadowPrefixes(script);
  uint64_t total = Calibrate(dir, script, shadow);
  ASSERT_GT(total, 50u);  // enough distinct I/O calls to land kills in

  // >= 200 kill points: sticky-dead errors and torn (short) writes.
  // Recovery must land on a prefix no older than the acked count.
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 210; ++iter) {
    uint64_t k = 1 + rng() % total;
    const char* mode = iter % 5 == 4 ? "short" : "error";
    RunOneCrash(dir, iter, k, mode, script, shadow, /*prefix_only=*/false);
    if (HasFatalFailure()) return;
  }
}

TEST(WalCrashTest, BitFlipsNeverYieldTornState) {
  // Silent corruption (one flipped bit, write "succeeds") against a
  // commits-only workload: every flip lands in a WAL frame, the CRC
  // catches it, and recovery is still some exact commit prefix — never
  // a half-applied group. (The committed-suffix guarantee is about
  // crashes; corruption may legitimately cut earlier, so only
  // prefix-consistency is asserted.)
  const std::string dir = ::testing::TempDir();
  std::vector<Step> script = MakeScript(1123, /*with_persistence=*/false);
  std::vector<std::string> shadow = ShadowPrefixes(script);
  uint64_t total = Calibrate(dir, script, shadow);
  ASSERT_GT(total, 0u);

  std::mt19937_64 rng(11);
  for (int iter = 0; iter < 25; ++iter) {
    uint64_t k = 1 + rng() % total;
    RunOneCrash(dir, 1000 + iter, k, "flip", script, shadow,
                /*prefix_only=*/true);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace fdb
