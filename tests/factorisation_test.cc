#include "fdb/core/factorisation.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/relational/rdb_ops.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(FactNodeTest, MakeLeafAndNode) {
  FactPtr leaf = MakeLeaf({Value(1), Value(2)});
  EXPECT_EQ(leaf->size(), 2);
  EXPECT_TRUE(leaf->children.empty());
  FactPtr node = MakeNode({Value(1)}, {leaf});
  EXPECT_EQ(node->child(0, 1, 0), leaf);
}

TEST(FactorisationTest, PizzeriaSingletonCountMatchesFigure1) {
  Pizzeria p = MakePizzeria();
  // Figure 1's factorisation has 26 singletons.
  EXPECT_EQ(p.view().CountSingletons(), 26);
}

TEST(FactorisationTest, PizzeriaTupleCount) {
  Pizzeria p = MakePizzeria();
  // |Orders ⋈ Pizzas ⋈ Items| = 13 tuples.
  EXPECT_EQ(p.view().CountTuples(), 13);
  EXPECT_FALSE(p.view().empty());
}

TEST(FactorisationTest, FlattenMatchesRelationalJoin) {
  Pizzeria p = MakePizzeria();
  Relation flat = p.view().Flatten();
  Relation join = NaturalJoinAll({p.db->relation("Orders"),
                                  p.db->relation("Pizzas"),
                                  p.db->relation("Items")});
  EXPECT_TRUE(testing::SameSet(flat, join, join.schema().attrs(),
                               p.db->registry()));
  EXPECT_EQ(flat.size(), 13);
}

TEST(FactorisationTest, OutputSchemaFollowsTopologicalOrder) {
  Pizzeria p = MakePizzeria();
  RelSchema s = p.view().OutputSchema();
  ASSERT_EQ(s.arity(), 5);
  EXPECT_EQ(s.attr(0), p.attr("pizza"));
  EXPECT_EQ(s.attr(1), p.attr("date"));
  EXPECT_EQ(s.attr(2), p.attr("customer"));
  EXPECT_EQ(s.attr(3), p.attr("item"));
  EXPECT_EQ(s.attr(4), p.attr("price"));
}

TEST(FactorisationTest, ValidateAcceptsWellFormed) {
  Pizzeria p = MakePizzeria();
  std::string why;
  EXPECT_TRUE(p.view().Validate(&why)) << why;
}

TEST(FactorisationTest, ValidateRejectsUnsortedUnion) {
  FTree t;
  t.AddNode({0}, -1);
  Factorisation f(t, {MakeLeaf({Value(2), Value(1)})});
  std::string why;
  EXPECT_FALSE(f.Validate(&why));
  EXPECT_NE(why.find("sorted"), std::string::npos);
}

TEST(FactorisationTest, ValidateRejectsShapeMismatch) {
  FTree t;
  int r = t.AddNode({0}, -1);
  t.AddNode({1}, r);
  // One value but no child for it.
  Factorisation f(t, {MakeLeaf({Value(1)})});
  std::string why;
  EXPECT_FALSE(f.Validate(&why));
}

TEST(FactorisationTest, ValidateRejectsEmptyInnerUnion) {
  FTree t;
  int r = t.AddNode({0}, -1);
  t.AddNode({1}, r);
  Factorisation f(t, {MakeNode({Value(1)}, {MakeLeaf({})})});
  std::string why;
  EXPECT_FALSE(f.Validate(&why));
}

TEST(FactorisationTest, EmptyRelationRepresentation) {
  FTree t;
  t.AddNode({0}, -1);
  Factorisation f(t, {MakeLeaf({})});
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.CountTuples(), 0);
  EXPECT_TRUE(f.Flatten().empty());
  EXPECT_TRUE(f.Validate());
}

TEST(FactorisationTest, ProductOfIndependentRootsExample3) {
  // Example 3: R = {♦,♣} × {1,2,3} factorises as
  // (⟨A:♦⟩ ∪ ⟨A:♣⟩) × (⟨B:1⟩ ∪ ⟨B:2⟩ ∪ ⟨B:3⟩): 5 singletons, 6 tuples.
  FTree t;
  t.AddNode({0}, -1);
  t.AddNode({1}, -1);
  Factorisation f(
      t, {MakeLeaf({Value(100), Value(200)}),
          MakeLeaf({Value(1), Value(2), Value(3)})});
  EXPECT_EQ(f.CountSingletons(), 5);
  EXPECT_EQ(f.CountTuples(), 6);
  Relation flat = f.Flatten();
  EXPECT_EQ(flat.size(), 6);
}

TEST(FactorisationTest, EmptyRootMakesProductEmpty) {
  FTree t;
  t.AddNode({0}, -1);
  t.AddNode({1}, -1);
  Factorisation f(t, {MakeLeaf({Value(1)}), MakeLeaf({})});
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.CountTuples(), 0);
}

TEST(FactorisationTest, ZeroRootsRepresentNullaryTuple) {
  FTree t;
  Factorisation f(t, {});
  EXPECT_FALSE(f.empty());
  EXPECT_EQ(f.CountTuples(), 1);
  Relation flat = f.Flatten();
  EXPECT_EQ(flat.size(), 1);
  EXPECT_EQ(flat.schema().arity(), 0);
}

TEST(FactorisationTest, ToStringSmallExpression) {
  FTree t;
  int a = t.AddNode({0}, -1);
  t.AddNode({1}, a);
  AttributeRegistry reg;
  reg.Intern("A");
  reg.Intern("B");
  Factorisation f(
      t, {MakeNode({Value(1), Value(2)},
                   {MakeLeaf({Value(7)}), MakeLeaf({Value(8), Value(9)})})});
  std::string s = f.ToString(reg);
  EXPECT_NE(s.find("<1>"), std::string::npos);
  EXPECT_NE(s.find(" u "), std::string::npos);
}

TEST(FactorisationTest, CopyIsCheapAndShared) {
  Pizzeria p = MakePizzeria();
  Factorisation copy = p.view();  // shares all FactNodes
  EXPECT_EQ(copy.roots()[0], p.view().roots()[0]);
  EXPECT_EQ(copy.CountSingletons(), 26);
}

}  // namespace
}  // namespace fdb
