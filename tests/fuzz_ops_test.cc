// Fuzz-style invariant testing: random interleavings of the f-plan
// operators (swaps, constant selections, partial aggregates) applied to
// random factorised databases must (i) keep every structural invariant and
// (ii) agree with a flat relational oracle that replays the same logical
// operations.

#include <gtest/gtest.h>

#include <random>

#include "fdb/core/build.h"
#include "fdb/core/ops/aggregate.h"
#include "fdb/core/ops/selection.h"
#include "fdb/core/ops/swap.h"
#include "fdb/relational/rdb_ops.h"
#include "fdb/workload/random_db.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::SameSet;

class FuzzOps : public ::testing::TestWithParam<int> {};

TEST_P(FuzzOps, RandomOperatorSequenceAgreesWithOracle) {
  Database db;
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  RandomDbSpec spec;
  spec.seed = rng();
  spec.num_relations = 2 + static_cast<int>(rng() % 3);
  spec.arity = 2 + static_cast<int>(rng() % 2);
  spec.rows = 15 + static_cast<int>(rng() % 30);
  spec.domain = 3 + static_cast<int>(rng() % 4);
  RandomDb rdb =
      GenerateChainDb(&db, "fz" + std::to_string(GetParam()), spec);
  std::vector<const Relation*> rels;
  for (const std::string& name : rdb.relation_names) {
    rels.push_back(db.relation(name));
  }
  FTree tree = ChooseFTree(rels);
  Factorisation f = FactoriseJoin(tree, rels);
  Relation oracle = NaturalJoinAll(rels);  // flat mirror of f

  for (int step = 0; step < 10 && !f.empty(); ++step) {
    int kind = static_cast<int>(rng() % 3);
    switch (kind) {
      case 0: {  // swap a random non-root node
        std::vector<int> candidates;
        for (int n : f.tree().TopologicalOrder()) {
          if (f.tree().parent(n) >= 0) candidates.push_back(n);
        }
        if (candidates.empty()) break;
        ApplySwap(&f, candidates[rng() % candidates.size()]);
        break;
      }
      case 1: {  // constant selection on a random atomic attribute
        std::vector<std::pair<int, AttrId>> atomic;
        for (int n : f.tree().TopologicalOrder()) {
          if (!f.tree().node(n).is_aggregate()) {
            atomic.emplace_back(n, f.tree().node(n).attrs[0]);
          }
        }
        if (atomic.empty()) break;
        auto [node, attr] = atomic[rng() % atomic.size()];
        CmpOp ops[] = {CmpOp::kLe, CmpOp::kGe, CmpOp::kNe};
        CmpOp op = ops[rng() % 3];
        Value c(static_cast<int64_t>(rng() % spec.domain));
        ApplySelectConst(&f, node, op, c);
        oracle = SelectConst(oracle, attr, op, c);
        break;
      }
      case 2: {  // partial count over a random aggregatable leaf subtree
        // Only aggregate subtrees that are leaves of atomic attributes, so
        // the oracle (which cannot express partial aggregation) remains
        // comparable on the surviving atomic attributes.
        std::vector<int> leaves;
        for (int n : f.tree().TopologicalOrder()) {
          if (f.tree().children(n).empty() &&
              !f.tree().node(n).is_aggregate()) {
            leaves.push_back(n);
          }
        }
        if (leaves.empty()) break;
        int u = leaves[rng() % leaves.size()];
        // Keep at least two atomic nodes so comparisons stay meaningful.
        int atomic_count = 0;
        for (int n : f.tree().TopologicalOrder()) {
          atomic_count += !f.tree().node(n).is_aggregate();
        }
        if (atomic_count <= 2) break;
        std::vector<AttrId> gone = f.tree().node(u).attrs;
        ApplyAggregate(&f, &db.registry(), u,
                       {{AggFn::kCount, kInvalidAttr}});
        // Oracle: project the attribute away (set semantics on the rest is
        // what the remaining atomic attributes represent).
        std::vector<AttrId> rest;
        for (AttrId a : oracle.schema().attrs()) {
          if (std::find(gone.begin(), gone.end(), a) == gone.end()) {
            rest.push_back(a);
          }
        }
        oracle = Project(oracle, rest, /*dedup=*/true);
        break;
      }
    }
    ASSERT_TRUE(f.Validate()) << "step " << step;
    ASSERT_TRUE(f.tree().SatisfiesPathConstraint()) << "step " << step;

    // Compare on the surviving atomic attributes.
    std::vector<AttrId> atomic_attrs;
    for (int n : f.tree().TopologicalOrder()) {
      const FTreeNode& nd = f.tree().node(n);
      if (!nd.is_aggregate()) {
        atomic_attrs.insert(atomic_attrs.end(), nd.attrs.begin(),
                            nd.attrs.end());
      }
    }
    if (atomic_attrs.empty()) break;
    ASSERT_TRUE(
        SameSet(f.Flatten(), oracle, atomic_attrs, db.registry()))
        << "divergence at step " << step;
    if (f.empty()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOps, ::testing::Range(0, 20));

}  // namespace
}  // namespace fdb
