#include "fdb/serve/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

// Wire-codec tests: round-trips for every typed payload, the incremental
// decoder under byte-at-a-time delivery, and — the part that matters for
// a network-facing parser — rejection of malformed, truncated, oversized
// and hostile inputs. Nothing here opens a socket.

namespace fdb {
namespace serve {
namespace {

std::vector<uint8_t> OneFrame(FrameType type,
                              const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  AppendFrame(&out, type, payload.data(), payload.size());
  return out;
}

TEST(WireTest, FrameRoundTripWholeAndByteAtATime) {
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> bytes = OneFrame(FrameType::kRow, payload);
  ASSERT_EQ(bytes.size(), payload.size() + 5);

  FrameDecoder whole;
  whole.Feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(whole.Next(&f));
  EXPECT_EQ(f.type, FrameType::kRow);
  EXPECT_EQ(f.payload, payload);
  EXPECT_FALSE(whole.Next(&f));

  // The decoder must produce the identical frame when the bytes dribble
  // in one at a time (short TCP reads).
  FrameDecoder dribble;
  for (size_t i = 0; i < bytes.size(); ++i) {
    Frame g;
    EXPECT_EQ(dribble.Next(&g), i == bytes.size())
        << "frame completed early at byte " << i;
    dribble.Feed(&bytes[i], 1);
  }
  Frame g;
  ASSERT_TRUE(dribble.Next(&g));
  EXPECT_EQ(g.payload, payload);
}

TEST(WireTest, DecoderHandlesBackToBackFrames) {
  std::vector<uint8_t> bytes = OneFrame(FrameType::kQuery, {'a'});
  std::vector<uint8_t> more = OneFrame(FrameType::kDone, {});
  bytes.insert(bytes.end(), more.begin(), more.end());

  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(dec.Next(&f));
  EXPECT_EQ(f.type, FrameType::kQuery);
  ASSERT_TRUE(dec.Next(&f));
  EXPECT_EQ(f.type, FrameType::kDone);
  EXPECT_TRUE(f.payload.empty());
  EXPECT_FALSE(dec.Next(&f));
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(WireTest, OversizedLengthPrefixRejectedBeforePayloadArrives) {
  // A hostile 4 GiB length must fail from the 5 header bytes alone — the
  // decoder may never wait for (or allocate) the announced payload.
  uint8_t header[5] = {0xFF, 0xFF, 0xFF, 0xFF,
                       static_cast<uint8_t>(FrameType::kQuery)};
  FrameDecoder dec;
  Frame f;
  dec.Feed(header, sizeof(header));
  EXPECT_THROW(dec.Next(&f), WireError);
}

TEST(WireTest, UnknownFrameTypeRejected) {
  uint8_t header[5] = {0, 0, 0, 0, 'z'};
  FrameDecoder dec;
  dec.Feed(header, sizeof(header));
  Frame f;
  EXPECT_THROW(dec.Next(&f), WireError);
}

TEST(WireTest, SenderEnforcesTheFrameCapToo) {
  std::vector<uint8_t> big(kMaxFrameBytes + 1);
  std::vector<uint8_t> out;
  EXPECT_THROW(AppendFrame(&out, FrameType::kRow, big.data(), big.size()),
               WireError);
}

TEST(WireTest, ValueRoundTripAllTags) {
  std::vector<Value> vals = {Value(), Value(static_cast<int64_t>(-42)),
                             Value(3.25), Value(std::string("héllo\0x", 7)),
                             Value(std::string())};
  WireWriter w;
  for (const Value& v : vals) EncodeValue(&w, v);
  std::vector<uint8_t> bytes = w.Take();
  WireReader r(bytes);
  for (const Value& v : vals) {
    Value got = DecodeValue(&r);
    EXPECT_EQ(got.ToString(), v.ToString());
  }
  r.ExpectEnd();
}

TEST(WireTest, HelloRoundTripAndMismatch) {
  EXPECT_NO_THROW(DecodeHello(EncodeHello()));

  std::vector<uint8_t> bad = EncodeHello();
  bad[0] = 'X';  // wrong magic
  EXPECT_THROW(DecodeHello(bad), WireError);

  std::vector<uint8_t> wrong_version = EncodeHello();
  wrong_version[4] = kProtocolVersion + 1;
  EXPECT_THROW(DecodeHello(wrong_version), WireError);

  EXPECT_THROW(DecodeHello(std::vector<uint8_t>{'F', 'D'}), WireError);
}

TEST(WireTest, SchemaRowDoneErrorRetryRoundTrip) {
  std::vector<std::string> cols = {"customer", "sum(price)", ""};
  EXPECT_EQ(DecodeSchema(EncodeSchema(cols)), cols);

  std::vector<Value> row = {Value(static_cast<int64_t>(7)), Value(1.5),
                            Value("x")};
  std::vector<Value> got = DecodeRow(EncodeRow(row), 3);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].as_int(), 7);
  EXPECT_EQ(got[1].as_double(), 1.5);
  EXPECT_EQ(got[2].as_string(), "x");

  DoneStats stats;
  stats.rows = 123;
  stats.elapsed_ns = 456789;
  stats.queue_wait_ns = 42;
  stats.mem_charged = 1 << 20;
  DoneStats back = DecodeDone(EncodeDone(stats));
  EXPECT_EQ(back.rows, stats.rows);
  EXPECT_EQ(back.elapsed_ns, stats.elapsed_ns);
  EXPECT_EQ(back.queue_wait_ns, stats.queue_wait_ns);
  EXPECT_EQ(back.mem_charged, stats.mem_charged);

  ErrorInfo err{kErrTimeout, "query killed: wall-time limit"};
  ErrorInfo eback = DecodeError(EncodeError(err));
  EXPECT_EQ(eback.code, kErrTimeout);
  EXPECT_EQ(eback.message, err.message);
  EXPECT_STREQ(ErrorCodeName(eback.code), "timeout");

  RetryInfo retry{250, "admission queue full"};
  RetryInfo rback = DecodeRetry(EncodeRetry(retry));
  EXPECT_EQ(rback.retry_after_ms, 250u);
  EXPECT_EQ(rback.message, retry.message);
}

TEST(WireTest, TruncatedTypedPayloadsThrowNotCrash) {
  // Chop each payload at every strict-prefix length and feed it back to
  // its own decoder: every cut must throw WireError — never read out of
  // bounds (ASan is the second half of this assertion).
  auto chop = [](const std::vector<uint8_t>& full,
                 auto decode) {
    for (size_t cut = 0; cut < full.size(); ++cut) {
      std::vector<uint8_t> part(full.begin(), full.begin() + cut);
      EXPECT_THROW(decode(part), WireError) << "cut=" << cut;
    }
  };
  chop(EncodeSchema({"a", "bc"}),
       [](const std::vector<uint8_t>& p) { (void)DecodeSchema(p); });
  chop(EncodeRow({Value(static_cast<int64_t>(1)), Value("xyz")}),
       [](const std::vector<uint8_t>& p) { (void)DecodeRow(p, 2); });
  chop(EncodeDone(DoneStats{1, 2, 3, 4}),
       [](const std::vector<uint8_t>& p) { (void)DecodeDone(p); });
  chop(EncodeError(ErrorInfo{kErrExec, "boom"}),
       [](const std::vector<uint8_t>& p) { (void)DecodeError(p); });
  chop(EncodeRetry(RetryInfo{10, "busy"}),
       [](const std::vector<uint8_t>& p) { (void)DecodeRetry(p); });
}

TEST(WireTest, HostileSchemaCountCannotPreallocate) {
  // count = 2^32-1 with no column bytes behind it: must throw, not
  // reserve gigabytes.
  WireWriter w;
  w.U32(0xFFFFFFFFu);
  EXPECT_THROW((void)DecodeSchema(w.Take()), WireError);

  // A string length pointing past the payload end likewise.
  WireWriter w2;
  w2.U32(1);
  w2.U32(0x7FFFFFFFu);  // column-name length with no bytes following
  EXPECT_THROW((void)DecodeSchema(w2.Take()), WireError);
}

TEST(WireTest, TrailingGarbageAfterPayloadRejected) {
  std::vector<uint8_t> done = EncodeDone(DoneStats{1, 2, 3, 4});
  done.push_back(0xAB);
  EXPECT_THROW((void)DecodeDone(done), WireError);
}

// Fuzz-style loop: deterministic xorshift mutations of valid frames fed
// through the full decoder + typed-payload path. The invariant is "throws
// WireError or decodes cleanly" — no crashes, no unbounded allocation.
TEST(WireTest, MutationFuzzNeverCrashes) {
  uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  std::vector<std::vector<uint8_t>> seeds = {
      OneFrame(FrameType::kHello, EncodeHello()),
      OneFrame(FrameType::kSchema, EncodeSchema({"a", "b", "c"})),
      OneFrame(FrameType::kRow,
               EncodeRow({Value(static_cast<int64_t>(9)), Value(2.5),
                          Value("str"), Value()})),
      OneFrame(FrameType::kDone, EncodeDone(DoneStats{5, 6, 7, 8})),
      OneFrame(FrameType::kError, EncodeError(ErrorInfo{kErrParse, "p"})),
      OneFrame(FrameType::kRetry, EncodeRetry(RetryInfo{99, "later"})),
  };

  int decoded = 0, rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> bytes = seeds[iter % seeds.size()];
    // Mutate 1..4 bytes (sometimes truncate instead).
    if (next() % 8 == 0 && !bytes.empty()) {
      bytes.resize(next() % bytes.size());
    } else {
      int flips = 1 + static_cast<int>(next() % 4);
      for (int i = 0; i < flips && !bytes.empty(); ++i) {
        bytes[next() % bytes.size()] =
            static_cast<uint8_t>(next() & 0xFF);
      }
    }
    FrameDecoder dec;
    try {
      dec.Feed(bytes.data(), bytes.size());
      Frame f;
      while (dec.Next(&f)) {
        switch (f.type) {
          case FrameType::kHello:
            DecodeHello(f.payload);
            break;
          case FrameType::kSchema: {
            std::vector<std::string> cols = DecodeSchema(f.payload);
            (void)cols;
            break;
          }
          case FrameType::kRow:
            (void)DecodeRow(f.payload, 4);
            break;
          case FrameType::kDone:
            (void)DecodeDone(f.payload);
            break;
          case FrameType::kError:
            (void)DecodeError(f.payload);
            break;
          case FrameType::kRetry:
            (void)DecodeRetry(f.payload);
            break;
          case FrameType::kQuery:
            break;
        }
        ++decoded;
      }
    } catch (const WireError&) {
      ++rejected;
    }
  }
  // The loop is deterministic: both outcomes must actually occur or the
  // fuzzer is not exercising anything.
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace serve
}  // namespace fdb
