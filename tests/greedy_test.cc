#include "fdb/optimizer/greedy.h"

#include <gtest/gtest.h>

#include "fdb/core/order.h"
#include "fdb/optimizer/fplan.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

// Replays a plan on an f-tree copy (no data), mirroring ExecutePlan.
FTree Replay(const FTree& tree, const AttributeRegistry& reg,
             const FPlan& plan) {
  FTree t = tree;
  AttributeRegistry r = reg;
  for (const FOp& op : plan) {
    switch (op.kind) {
      case FOpKind::kSwap:
        t.SwapUp(op.b);
        break;
      case FOpKind::kMerge:
        t.MergeSiblings(op.a, op.b);
        break;
      case FOpKind::kAbsorb:
        t.AbsorbDescendant(op.a, op.b);
        break;
      case FOpKind::kSelectConst:
        break;
      case FOpKind::kAggregate: {
        std::vector<AggregateLabel> labels;
        std::vector<AttrId> over = t.SubtreeOriginalAttrs(op.a);
        for (const AggTask& task : op.tasks) {
          AggregateLabel l;
          l.fn = task.fn;
          l.source = task.source;
          l.over = over;
          std::string base = "re" + std::to_string(r.size());
          l.id = r.Intern(base);
          labels.push_back(l);
        }
        t.ReplaceSubtreeWithAggregates(op.a, labels);
        break;
      }
      case FOpKind::kRename:
        break;
    }
  }
  return t;
}

// All atomic attributes left in the tree.
std::vector<AttrId> AtomicAttrs(const FTree& t) {
  std::vector<AttrId> out;
  for (int n : t.TopologicalOrder()) {
    if (!t.node(n).is_aggregate()) {
      out.insert(out.end(), t.node(n).attrs.begin(), t.node(n).attrs.end());
    }
  }
  return out;
}

TEST(GreedyTest, Q2RevenuePerCustomerPlanShape) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  ASSERT_FALSE(plan.empty());
  // The first operator is the local partial aggregation of the item/price
  // subtree (no restructuring needed for it).
  EXPECT_EQ(plan[0].kind, FOpKind::kAggregate);
  EXPECT_EQ(plan[0].a, p.n_item);
  // The plan then restructures and aggregates until only customer remains.
  FTree final_tree = Replay(p.view().tree(), p.db->registry(), plan);
  EXPECT_EQ(AtomicAttrs(final_tree),
            std::vector<AttrId>{p.attr("customer")});
  EXPECT_TRUE(SupportsGrouping(
      final_tree, {final_tree.NodeOfAttr(p.attr("customer"))}));
  EXPECT_TRUE(final_tree.SatisfiesPathConstraint());
}

TEST(GreedyTest, Q1NoRestructuringNeeded) {
  // G = {pizza, date, customer} sits on a root path of T1: the plan only
  // needs the partial aggregate of the item subtree — no swaps.
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {p.attr("pizza"), p.attr("date"), p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  for (const FOp& op : plan) {
    EXPECT_NE(op.kind, FOpKind::kSwap) << "unexpected restructuring";
  }
  FTree final_tree = Replay(p.view().tree(), p.db->registry(), plan);
  EXPECT_EQ(AtomicAttrs(final_tree).size(), 3u);
}

TEST(GreedyTest, Q5FullAggregationConsumesEverything) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  FTree final_tree = Replay(p.view().tree(), p.db->registry(), plan);
  EXPECT_TRUE(AtomicAttrs(final_tree).empty());
}

TEST(GreedyTest, PartialTasksDeriveByPropositionTwo) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  AttrId price = p.attr("price");
  // Over the item subtree (contains price): sum stays sum.
  std::vector<AggTask> tasks =
      PartialTasks(t, p.n_item, {{AggFn::kSum, price}});
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].fn, AggFn::kSum);
  // Over the date subtree (no price): sum decays to count.
  tasks = PartialTasks(t, p.n_date, {{AggFn::kSum, price}});
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].fn, AggFn::kCount);
  // Composite (sum, count) deduplicates the decayed copies.
  tasks = PartialTasks(t, p.n_date,
                       {{AggFn::kSum, price}, {AggFn::kCount, kInvalidAttr}});
  EXPECT_EQ(tasks.size(), 1u);
  // min decays to count outside its source subtree, stays min inside.
  tasks = PartialTasks(t, p.n_item, {{AggFn::kMin, price}});
  EXPECT_EQ(tasks[0].fn, AggFn::kMin);
}

TEST(GreedyTest, SubtreeAggregatableRespectsBlockedAttrs) {
  Pizzeria p = MakePizzeria();
  const FTree& t = p.view().tree();
  EXPECT_TRUE(SubtreeAggregatable(t, p.n_item, {p.attr("customer")}));
  EXPECT_FALSE(SubtreeAggregatable(t, p.n_item, {p.attr("price")}));
  EXPECT_FALSE(SubtreeAggregatable(t, p.n_pizza, {p.attr("customer")}));
}

TEST(GreedyTest, ConstSelectionsComeFirst) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.const_selections = {{p.attr("price"), CmpOp::kGt, Value(1)}};
  q.group = {p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].kind, FOpKind::kSelectConst);
  EXPECT_EQ(plan[0].a, p.n_price);
}

TEST(GreedyTest, EqualitySelectionUsesMergeWhenSiblings) {
  // Forest of two independent trees; equality across roots → merge.
  Database db;
  AttrId a = db.Attr("gya"), b = db.Attr("gyb");
  FTree t;
  t.AddNode({a}, -1);
  t.AddNode({b}, -1);
  t.AddEdge({{a}, 4.0, "ra"});
  t.AddEdge({{b}, 4.0, "rb"});
  PlannerQuery q;
  q.eq_selections = {{a, b}};
  FPlan plan = GreedyPlan(t, db.registry(), q);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FOpKind::kMerge);
}

TEST(GreedyTest, EqualitySelectionUsesAbsorbOnPath) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.eq_selections = {{p.attr("pizza"), p.attr("customer")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FOpKind::kAbsorb);
  EXPECT_EQ(plan[0].a, p.n_pizza);
  EXPECT_EQ(plan[0].b, p.n_customer);
}

TEST(GreedyTest, EqualitySelectionOnSiblingBranches) {
  // date = item: the nodes are siblings under pizza, so a merge applies
  // directly with no restructuring.
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.eq_selections = {{p.attr("date"), p.attr("item")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].kind, FOpKind::kMerge);
}

TEST(GreedyTest, EqualityAcrossBranchesRestructuresFirst) {
  // customer = price: the nodes sit deep in different branches; the plan
  // must swap until one can merge/absorb, then perform the selection.
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.eq_selections = {{p.attr("customer"), p.attr("price")}};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  bool has_swap = false, has_selection = false;
  for (const FOp& op : plan) {
    if (op.kind == FOpKind::kSwap) has_swap = true;
    if (op.kind == FOpKind::kMerge || op.kind == FOpKind::kAbsorb) {
      has_selection = true;
    }
  }
  EXPECT_TRUE(has_swap);
  EXPECT_TRUE(has_selection);
  FTree final_tree = Replay(p.view().tree(), p.db->registry(), plan);
  EXPECT_EQ(final_tree.NodeOfAttr(p.attr("customer")),
            final_tree.NodeOfAttr(p.attr("price")));
  EXPECT_TRUE(final_tree.SatisfiesPathConstraint());
}

TEST(GreedyTest, OrderByRestructuresToSupportTheorem2) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.order = {p.attr("customer"), p.attr("pizza")};
  FPlan plan = GreedyPlan(p.view().tree(), p.db->registry(), q);
  FTree final_tree = Replay(p.view().tree(), p.db->registry(), plan);
  EXPECT_TRUE(SupportsOrder(final_tree,
                            {final_tree.NodeOfAttr(p.attr("customer")),
                             final_tree.NodeOfAttr(p.attr("pizza"))}));
}

TEST(GreedyTest, EmptyQueryYieldsEmptyPlan) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  EXPECT_TRUE(GreedyPlan(p.view().tree(), p.db->registry(), q).empty());
}

TEST(GreedyTest, UnknownAttributesThrow) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {static_cast<AttrId>(4321)};
  q.tasks = {{AggFn::kCount, kInvalidAttr}};
  EXPECT_THROW(GreedyPlan(p.view().tree(), p.db->registry(), q),
               std::invalid_argument);
}

}  // namespace
}  // namespace fdb
