#include "fdb/optimizer/exhaustive.h"

#include <gtest/gtest.h>

#include "fdb/core/order.h"
#include "fdb/optimizer/cost.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(ExhaustiveTest, FindsPlanForRevenuePerCustomer) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(res.has_value());
  EXPECT_FALSE(res->plan.empty());
  EXPECT_GT(res->cost, 0.0);
  EXPECT_GT(res->explored, 0);
}

TEST(ExhaustiveTest, GoalAlreadySatisfiedIsEmptyPlan) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;  // no selections, no aggregates, no order
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(res->plan.empty());
  EXPECT_EQ(res->cost, 0.0);
}

TEST(ExhaustiveTest, OrderByGoalRequiresTheorem2) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.order = {p.attr("customer")};
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(res.has_value());
  // At least the two swaps pushing customer to the root.
  EXPECT_GE(res->plan.size(), 2u);
  for (const FOp& op : res->plan) EXPECT_EQ(op.kind, FOpKind::kSwap);
}

TEST(ExhaustiveTest, SelectionGoal) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.eq_selections = {{p.attr("pizza"), p.attr("customer")}};
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(res.has_value());
  bool has_selection = false;
  for (const FOp& op : res->plan) {
    if (op.kind == FOpKind::kMerge || op.kind == FOpKind::kAbsorb) {
      has_selection = true;
    }
  }
  EXPECT_TRUE(has_selection);
}

TEST(ExhaustiveTest, CostNeverExceedsGreedy) {
  // The exhaustive optimum is at most the greedy plan's cost under the
  // same metric (sum of intermediate f-tree size bounds).
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};

  auto exhaustive = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(exhaustive.has_value());

  // Replay the greedy plan and price it with the same metric.
  FPlan greedy = GreedyPlan(p.view().tree(), p.db->registry(), q);
  FTree t = p.view().tree();
  AttributeRegistry reg = p.db->registry();
  double greedy_cost = 0.0;
  for (const FOp& op : greedy) {
    switch (op.kind) {
      case FOpKind::kSwap:
        t.SwapUp(op.b);
        break;
      case FOpKind::kMerge:
        t.MergeSiblings(op.a, op.b);
        break;
      case FOpKind::kAbsorb:
        t.AbsorbDescendant(op.a, op.b);
        break;
      case FOpKind::kAggregate: {
        std::vector<AggregateLabel> labels;
        std::vector<AttrId> over = t.SubtreeOriginalAttrs(op.a);
        for (const AggTask& task : op.tasks) {
          AggregateLabel l;
          l.fn = task.fn;
          l.source = task.source;
          l.over = over;
          l.id = reg.Intern("ge" + std::to_string(reg.size()));
          labels.push_back(l);
        }
        t.ReplaceSubtreeWithAggregates(op.a, labels);
        break;
      }
      default:
        continue;  // const selections / renames don't change the tree
    }
    greedy_cost += FTreeCost(t);
  }
  EXPECT_LE(exhaustive->cost, greedy_cost + 1e-6);
}

TEST(ExhaustiveTest, StateCapReturnsNullopt) {
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.group = {p.attr("customer")};
  q.tasks = {{AggFn::kSum, p.attr("price")}};
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q,
                            /*max_states=*/1);
  EXPECT_FALSE(res.has_value());
}

TEST(ExhaustiveTest, CanonicalEncodingMergesSymmetricStates) {
  // A tiny search must settle far fewer states than the naive op tree.
  Pizzeria p = MakePizzeria();
  PlannerQuery q;
  q.order = {p.attr("date"), p.attr("pizza")};
  auto res = ExhaustivePlan(p.view().tree(), p.db->registry(), q);
  ASSERT_TRUE(res.has_value());
  FTree t = p.view().tree();
  for (const FOp& op : res->plan) {
    ASSERT_EQ(op.kind, FOpKind::kSwap);
    t.SwapUp(op.b);
  }
  EXPECT_TRUE(SupportsOrder(
      t, {t.NodeOfAttr(p.attr("date")), t.NodeOfAttr(p.attr("pizza"))}));
}

}  // namespace
}  // namespace fdb
