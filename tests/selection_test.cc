#include "fdb/core/ops/selection.h"

#include <gtest/gtest.h>

#include "fdb/core/build.h"
#include "fdb/relational/rdb_ops.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;
using testing::Row;
using testing::SameSet;

TEST(SelectConstTest, FiltersUnionAndPrunes) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  // price > 1 keeps base (6) and pineapple (2) only.
  ApplySelectConst(&f, p.n_price, CmpOp::kGt, Value(1));
  EXPECT_TRUE(f.Validate());
  Relation expect = SelectConst(
      NaturalJoinAll({p.db->relation("Orders"), p.db->relation("Pizzas"),
                      p.db->relation("Items")}),
      p.attr("price"), CmpOp::kGt, Value(1));
  EXPECT_TRUE(SameSet(f.Flatten(), expect, expect.schema().attrs(),
                      p.db->registry()));
}

TEST(SelectConstTest, PruningPropagatesUpwards) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  // No pizza has an item priced 99: the whole factorisation empties.
  ApplySelectConst(&f, p.n_price, CmpOp::kEq, Value(99));
  EXPECT_TRUE(f.empty());
}

TEST(SelectConstTest, SelectionAtRoot) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplySelectConst(&f, p.n_pizza, CmpOp::kEq, Value("Hawaii"));
  EXPECT_TRUE(f.Validate());
  EXPECT_EQ(f.CountTuples(), 6);  // 2 customers × 3 items
}

TEST(SelectConstTest, StringInequality) {
  Pizzeria p = MakePizzeria();
  Factorisation f = p.view();
  ApplySelectConst(&f, p.n_customer, CmpOp::kNe, Value("Mario"));
  Relation expect = SelectConst(
      NaturalJoinAll({p.db->relation("Orders"), p.db->relation("Pizzas"),
                      p.db->relation("Items")}),
      p.attr("customer"), CmpOp::kNe, Value("Mario"));
  EXPECT_TRUE(SameSet(f.Flatten(), expect, expect.schema().attrs(),
                      p.db->registry()));
}

class SelectionFixture : public ::testing::Test {
 protected:
  // Two relations r1(a, b), r2(c, d) placed as independent root trees:
  //   a → b   and   c → d
  // so that merge (roots) and absorb (after restructuring) can be tested.
  SelectionFixture() {
    a_ = reg_.Intern("ma");
    b_ = reg_.Intern("mb");
    c_ = reg_.Intern("mc");
    d_ = reg_.Intern("md");
    r1_ = Relation{RelSchema({a_, b_})};
    r1_.Add(Row({1, 10}));
    r1_.Add(Row({2, 20}));
    r1_.Add(Row({3, 30}));
    r2_ = Relation{RelSchema({c_, d_})};
    r2_.Add(Row({2, 200}));
    r2_.Add(Row({3, 300}));
    r2_.Add(Row({4, 400}));

    int na = tree_.AddNode({a_}, -1);
    tree_.AddNode({b_}, na);
    int nc = tree_.AddNode({c_}, -1);
    tree_.AddNode({d_}, nc);
    tree_.AddEdge({{a_, b_}, 3.0, "r1"});
    tree_.AddEdge({{c_, d_}, 3.0, "r2"});
    fact_ = FactoriseJoin(tree_, {&r1_, &r2_});
  }

  AttributeRegistry reg_;
  AttrId a_, b_, c_, d_;
  Relation r1_, r2_;
  FTree tree_;
  Factorisation fact_;
};

TEST_F(SelectionFixture, MergeRootsImplementsEquality) {
  // σ_{a=c}: intersect the two root unions.
  int na = fact_.tree().NodeOfAttr(a_);
  int nc = fact_.tree().NodeOfAttr(c_);
  ApplyMerge(&fact_, na, nc);
  EXPECT_TRUE(fact_.Validate());
  // a = c ∈ {2, 3}.
  EXPECT_EQ(fact_.CountTuples(), 2);
  Relation cross = NaturalJoin(r1_, r2_);  // no shared attrs: product
  Relation expect = SelectAttrEq(cross, a_, c_);
  EXPECT_TRUE(SameSet(fact_.Flatten(), expect, {a_, b_, c_, d_}, reg_));
  // The merged node carries both attribute names.
  int merged = fact_.tree().NodeOfAttr(a_);
  EXPECT_EQ(fact_.tree().NodeOfAttr(c_), merged);
}

TEST_F(SelectionFixture, MergeSiblingsUnderCommonParent) {
  // Make b and d siblings under the merged a=c node first.
  int na = fact_.tree().NodeOfAttr(a_);
  int nc = fact_.tree().NodeOfAttr(c_);
  ApplyMerge(&fact_, na, nc);
  int nb = fact_.tree().NodeOfAttr(b_);
  int nd = fact_.tree().NodeOfAttr(d_);
  ASSERT_EQ(fact_.tree().parent(nb), fact_.tree().parent(nd));
  // σ_{b=d} on (2,20,200),(3,30,300): empty result.
  ApplyMerge(&fact_, nb, nd);
  EXPECT_TRUE(fact_.empty());
}

TEST_F(SelectionFixture, AbsorbDescendantImplementsEquality) {
  // Restructure so d is a descendant of a: merge roots a=c then absorb
  // tests σ_{a=d}-style equality along a path. Here instead test absorb of
  // b into a's class via σ_{a=b} (b is a's child).
  int na = fact_.tree().NodeOfAttr(a_);
  int nb = fact_.tree().NodeOfAttr(b_);
  ApplyAbsorb(&fact_, na, nb);
  EXPECT_TRUE(fact_.Validate());
  // No row of r1 has a = b: empty.
  EXPECT_TRUE(fact_.empty());
}

TEST_F(SelectionFixture, AbsorbKeepsMatchingRows) {
  // Add a row with a == b so absorption keeps it.
  r1_.Add(Row({5, 5}));
  fact_ = FactoriseJoin(tree_, {&r1_, &r2_});
  int na = fact_.tree().NodeOfAttr(a_);
  int nb = fact_.tree().NodeOfAttr(b_);
  ApplyAbsorb(&fact_, na, nb);
  EXPECT_TRUE(fact_.Validate());
  EXPECT_FALSE(fact_.empty());
  // Result: a=b=5 paired with all of r2 (3 rows).
  EXPECT_EQ(fact_.CountTuples(), 3);
  int merged = fact_.tree().NodeOfAttr(a_);
  EXPECT_EQ(fact_.tree().NodeOfAttr(b_), merged);
}

TEST_F(SelectionFixture, AbsorbDeepDescendant) {
  // Chain tree: a → b → (nothing); deep absorb across two levels needs a
  // three-attribute relation: build r(a, b, e) with e below b.
  AttrId e = reg_.Intern("me");
  Relation r{RelSchema({a_, b_, e})};
  r.Add(Row({1, 10, 1}));   // e == a: survives σ_{a=e}
  r.Add(Row({1, 10, 7}));
  r.Add(Row({2, 20, 2}));   // survives
  FTree t;
  int na = t.AddNode({a_}, -1);
  int nb = t.AddNode({b_}, na);
  int ne = t.AddNode({e}, nb);
  t.AddEdge({{a_, b_, e}, 3.0, "r"});
  Factorisation f = FactoriseJoin(t, {&r});
  ApplyAbsorb(&f, na, ne);
  EXPECT_TRUE(f.Validate());
  EXPECT_EQ(f.CountTuples(), 2);
  Relation expect = SelectAttrEq(r, a_, e);
  // After absorb, e's column equals a's; compare on (a, b) only.
  EXPECT_TRUE(SameSet(f.Flatten(), expect, {a_, b_}, reg_));
}

TEST_F(SelectionFixture, MergeNonSiblingsThrows) {
  int na = fact_.tree().NodeOfAttr(a_);
  int nd = fact_.tree().NodeOfAttr(d_);
  EXPECT_THROW(ApplyMerge(&fact_, na, nd), std::invalid_argument);
}

TEST_F(SelectionFixture, AbsorbNonDescendantThrows) {
  int na = fact_.tree().NodeOfAttr(a_);
  int nc = fact_.tree().NodeOfAttr(c_);
  EXPECT_THROW(ApplyAbsorb(&fact_, na, nc), std::invalid_argument);
}

}  // namespace
}  // namespace fdb
