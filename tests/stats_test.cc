#include "fdb/core/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fdb/optimizer/cost.h"
#include "test_util.h"

namespace fdb {
namespace {

using testing::MakePizzeria;
using testing::Pizzeria;

TEST(StatsTest, PizzeriaMatchesFigure1Exactly) {
  Pizzeria p = MakePizzeria();
  std::vector<FactNodeStats> stats = ComputeFactStats(p.view());
  ASSERT_EQ(stats.size(), 5u);

  auto of = [&](int node) {
    for (const FactNodeStats& s : stats) {
      if (s.node == node) return s;
    }
    return FactNodeStats{};
  };
  // pizza: one union of 3 values.
  EXPECT_EQ(of(p.n_pizza).unions, 1);
  EXPECT_EQ(of(p.n_pizza).singletons, 3);
  // date: one union per pizza; Capricciosa has two dates.
  EXPECT_EQ(of(p.n_date).unions, 3);
  EXPECT_EQ(of(p.n_date).singletons, 4);
  EXPECT_EQ(of(p.n_date).max_union, 2);
  // customer: one union per (pizza, date): 4 unions, 5 values
  // (Hawaii/Friday has Lucia and Pietro).
  EXPECT_EQ(of(p.n_customer).unions, 4);
  EXPECT_EQ(of(p.n_customer).singletons, 5);
  // item: one union per pizza, 3+3+1 values.
  EXPECT_EQ(of(p.n_item).unions, 3);
  EXPECT_EQ(of(p.n_item).singletons, 7);
  // price: one singleton per item occurrence.
  EXPECT_EQ(of(p.n_price).unions, 7);
  EXPECT_EQ(of(p.n_price).singletons, 7);
  EXPECT_EQ(of(p.n_price).max_union, 1);

  int64_t total = 0;
  for (const FactNodeStats& s : stats) total += s.singletons;
  EXPECT_EQ(total, p.view().CountSingletons());
}

TEST(StatsTest, AverageUnionSize) {
  Pizzeria p = MakePizzeria();
  std::vector<FactNodeStats> stats = ComputeFactStats(p.view());
  for (const FactNodeStats& s : stats) {
    if (s.node == p.n_customer) {
      EXPECT_DOUBLE_EQ(s.avg_union, 1.25);
    }
  }
}

TEST(StatsTest, SizeBoundsDominateActualSingletonCounts) {
  // The asymptotic bound of [22] upper-bounds the actual union totals:
  // exp(NodeSizeBoundLog) >= observed singletons per node (weights are the
  // true relation sizes).
  Pizzeria p = MakePizzeria();
  for (const FactNodeStats& s : ComputeFactStats(p.view())) {
    double bound = std::exp(NodeSizeBoundLog(p.view().tree(), s.node));
    EXPECT_GE(bound + 1e-6, static_cast<double>(s.singletons))
        << "node " << s.node;
  }
}

TEST(StatsTest, EmptyFactorisation) {
  FTree t;
  t.AddNode({0}, -1);
  Factorisation f(t, {MakeLeaf({})});
  std::vector<FactNodeStats> stats = ComputeFactStats(f);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].singletons, 0);
  EXPECT_EQ(stats[0].unions, 1);
}

TEST(StatsTest, RenderedTableContainsLabels) {
  Pizzeria p = MakePizzeria();
  std::string table = FactStatsToString(p.view(), p.db->registry());
  EXPECT_NE(table.find("pizza"), std::string::npos);
  EXPECT_NE(table.find("price"), std::string::npos);
  EXPECT_NE(table.find("unions"), std::string::npos);
}

}  // namespace
}  // namespace fdb
